(* Tests for the domain pool and the parallel execution paths layered on
   it: combinator semantics (ordering, exceptions, nesting), lifecycle
   guards, and the contract the wire-ins advertise — results AND
   deterministic solver counters of the parallel paths are identical to
   the sequential ones. *)

open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core
module Pool = Bagcqc_par.Pool
module Obs = Bagcqc_obs
open Bagcqc_engine

let with_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  with_jobs 4 @@ fun () ->
  List.iter
    (fun n ->
      let xs = Array.init n (fun i -> i) in
      let expect = Array.map (fun x -> (x * x) + 1) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_map n=%d" n)
        expect
        (Pool.parallel_map (fun x -> (x * x) + 1) xs);
      let expect_f = Array.to_list expect |> List.filter (fun x -> x mod 3 = 0) in
      Alcotest.(check (list int))
        (Printf.sprintf "parallel_filter_map n=%d" n)
        expect_f
        (Array.to_list
           (Pool.parallel_filter_map
              (fun x ->
                let y = (x * x) + 1 in
                if y mod 3 = 0 then Some y else None)
              xs)))
    [ 0; 1; 2; 3; 7; 64; 257 ];
  let l = List.init 33 (fun i -> i) in
  Alcotest.(check (list int)) "parallel_map_list"
    (List.map (fun x -> x * 2) l)
    (Pool.parallel_map_list (fun x -> x * 2) l)

let test_both () =
  with_jobs 4 @@ fun () ->
  let a, b = Pool.both (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "both fst" 42 a;
  Alcotest.(check string) "both snd" "ok" b

exception Boom of int

let test_exception_propagation () =
  with_jobs 4 @@ fun () ->
  (* Elements 3 and 17 both raise; chunks are contiguous ranges, so the
     failure from the smallest index must win deterministically. *)
  let xs = Array.init 40 (fun i -> i) in
  for _ = 1 to 5 do
    match
      Pool.parallel_map (fun i -> if i = 3 || i = 17 then raise (Boom i) else i) xs
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> Alcotest.(check int) "smallest failing index" 3 i
  done

let test_nested_runs_sequentially () =
  with_jobs 4 @@ fun () ->
  let rows =
    Pool.parallel_map
      (fun i ->
        Alcotest.(check bool) "task sees inside_task" true (Pool.inside_task ());
        (* A nested combinator must fall back to sequential execution
           instead of deadlocking the pool, and still be correct. *)
        Array.fold_left ( + ) 0
          (Pool.parallel_map (fun j -> (i * 10) + j) (Array.init 5 Fun.id)))
      (Array.init 8 Fun.id)
  in
  Alcotest.(check (array int)) "nested results"
    (Array.init 8 (fun i -> (i * 50) + 10))
    rows

let test_lifecycle_guards () =
  with_jobs 4 @@ fun () ->
  (* Pool sizing, obs recording flips, and solver-cache clears must all
     refuse to run inside a parallel region. *)
  let raises f =
    match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  let results =
    Pool.parallel_map
      (fun i ->
        if i = 0 then
          ( raises (fun () -> Pool.set_jobs 2),
            raises (fun () -> Obs.enable ()),
            raises (fun () -> Solver.clear ()) )
        else (true, true, true))
      (Array.init 8 Fun.id)
  in
  let set_jobs_r, enable_r, clear_r = results.(0) in
  Alcotest.(check bool) "set_jobs refused in region" true set_jobs_r;
  Alcotest.(check bool) "Obs.enable refused in region" true enable_r;
  Alcotest.(check bool) "Solver.clear refused in region" true clear_r;
  (* And all three work again once the region is over. *)
  Alcotest.(check bool) "region over" false (Pool.in_parallel_region ());
  Solver.clear ()

(* ------------------------------------------------------------------ *)
(* Parallel = sequential for the wired-in paths                        *)
(* ------------------------------------------------------------------ *)

let verdict_tag = function
  | Containment.Contained _ -> "contained"
  | Containment.Not_contained _ -> "not_contained"
  | Containment.Unknown _ -> "unknown"

(* Same random query pairs as the containment suite: small binary
   queries over R/S with a covering chain so every variable occurs. *)
let arb_pair =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 1 3 in
      let gen_query =
        let* natoms = int_range 1 3 in
        let* atoms =
          list_repeat natoms
            (let* rel = int_range 0 1 in
             let* a = int_range 0 (nv - 1) in
             let* b = int_range 0 (nv - 1) in
             return (Query.atom (if rel = 0 then "R" else "S") [ a; b ]))
        in
        let chain = List.init nv (fun v -> Query.atom "R" [ v; (v + 1) mod nv ]) in
        return (Query.dedup_atoms (Query.make ~nvars:nv (atoms @ chain)))
      in
      pair gen_query gen_query)
  in
  QCheck.make
    ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
    gen

let random_db seed =
  let st = Random.State.make [| seed |] in
  List.fold_left
    (fun db rel ->
      List.fold_left
        (fun db _ ->
          let a = Random.State.int st 4 and b = Random.State.int st 4 in
          Database.add_row rel [| Value.Int a; Value.Int b |] db)
        db
        (List.init (4 + Random.State.int st 12) Fun.id))
    Database.empty [ "R"; "S" ]

let prop_maxii_par_eq_seq =
  QCheck.Test.make ~name:"Maxii.decide: jobs=4 verdict equals jobs=1" ~count:30
    arb_pair (fun (q1, q2) ->
      let ineq = Containment.eq8 q1 q2 in
      let tag d =
        match d with
        | Bagcqc_entropy.Maxii.Valid _ -> "valid"
        | Bagcqc_entropy.Maxii.Invalid _ -> "invalid"
        | Bagcqc_entropy.Maxii.Unknown _ -> "unknown"
      in
      Solver.clear ();
      let seq = with_jobs 1 (fun () -> Bagcqc_entropy.Maxii.decide ineq) in
      Solver.clear ();
      let par = with_jobs 4 (fun () -> Bagcqc_entropy.Maxii.decide ineq) in
      tag seq = tag par)

let prop_hom_count_par_eq_seq =
  QCheck.Test.make ~name:"Hom.count: jobs=4 equals jobs=1" ~count:40
    (QCheck.pair arb_pair QCheck.small_int) (fun ((q, _), seed) ->
      let db = random_db seed in
      let seq = with_jobs 1 (fun () -> Hom.count q db) in
      let par = with_jobs 4 (fun () -> Hom.count q db) in
      seq = par)

let prop_contained_on_par_eq_seq =
  QCheck.Test.make ~name:"Hom.contained_on: jobs=4 equals jobs=1" ~count:40
    (QCheck.pair arb_pair QCheck.small_int) (fun ((q1, q2), seed) ->
      let db = random_db seed in
      let seq = with_jobs 1 (fun () -> Hom.contained_on q1 q2 db) in
      let par = with_jobs 4 (fun () -> Hom.contained_on q1 q2 db) in
      seq = par)

let prop_batch_par_eq_seq =
  QCheck.Test.make ~name:"decide_many: jobs=4 equals one-by-one jobs=1"
    ~count:15
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) arb_pair)
    (fun pairs ->
      Solver.clear ();
      let seq =
        with_jobs 1 (fun () ->
            List.map
              (fun (q1, q2) -> Containment.decide ~max_factors:8 q1 q2)
              pairs)
      in
      Solver.clear ();
      let par =
        with_jobs 4 (fun () -> Containment.decide_many ~max_factors:8 pairs)
      in
      List.for_all2
        (fun a b ->
          verdict_tag a = verdict_tag b
          &&
          match a, b with
          | Containment.Not_contained wa, Containment.Not_contained wb ->
            wa.Containment.card_p = wb.Containment.card_p
            && wa.Containment.hom2 = wb.Containment.hom2
          | _ -> true)
        seq par)

(* The serve daemon's concurrency contract, at the solver layer: N
   identical requests landing together cost exactly as many LP solves as
   one request (the sharded cache's in-flight dedup), and every caller
   gets byte-identical, certificate-verified verdicts — under both the
   sequential and the parallel scheduler. *)
let prop_identical_requests_one_solve =
  QCheck.Test.make
    ~name:"decide_many: N identical requests, one solve, identical verdicts"
    ~count:10 arb_pair (fun (q1, q2) ->
      let pairs = List.init 6 (fun _ -> (q1, q2)) in
      let cert_str c = Format.asprintf "%a" (Bagcqc_entropy.Certificate.pp ()) c in
      let was = Obs.enabled () in
      if not was then Obs.enable ();
      Fun.protect ~finally:(fun () -> if not was then Obs.disable ())
      @@ fun () ->
      Stats.reset ();
      Solver.clear ();
      let single = with_jobs 1 (fun () -> Containment.decide ~max_factors:8 q1 q2) in
      let single_solves = (Stats.snapshot ()).Stats.lp_solves in
      List.for_all
        (fun jobs ->
          Stats.reset ();
          Solver.clear ();
          let verdicts =
            with_jobs jobs (fun () ->
                Containment.decide_many ~max_factors:8 pairs)
          in
          (Stats.snapshot ()).Stats.lp_solves = single_solves
          && List.for_all
               (fun v ->
                 verdict_tag v = verdict_tag single
                 &&
                 match (v, single) with
                 | Containment.Contained c, Containment.Contained c0 ->
                   Bagcqc_entropy.Certificate.check c
                   && cert_str c = cert_str c0
                 | Containment.Not_contained w, Containment.Not_contained w0 ->
                   w.Containment.card_p = w0.Containment.card_p
                   && w.Containment.hom2 = w0.Containment.hom2
                 | _ -> true)
               verdicts)
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Deterministic counters: merged snapshots equal sequential counts    *)
(* ------------------------------------------------------------------ *)

(* The batch and Hom paths promise exact counter parity: each instance
   runs the sequential pipeline on one worker, and the sharded solver
   cache dedups in-flight problems so (hits, misses) match a one-by-one
   run.  (Maxii's speculative Normal∥Gamma path is exempt by design: it
   may solve LPs the sequential short-circuit skips.) *)
let batch_pairs =
  let q s = Parser.parse s in
  [ (q "R(x,y), R(y,z), R(z,x)", q "R(x,y), R(x,z)");
    (q "R(x,y)", q "R(x,y), R(x,z)");
    (q "R(x,y), R(y,z)", q "R(x,y)");
    (q "R(x,y), R(y,z), R(z,x)", q "R(x,y), R(x,z)");
    (q "R(x,y), R(y,z), R(z,w)", q "R(x,y), R(y,z)") ]

let counters_of f =
  Stats.reset ();
  Solver.clear ();
  ignore (f ());
  let s = Stats.snapshot () in
  ( s.Stats.lp_solves,
    s.Stats.cache_hits,
    s.Stats.cache_misses,
    s.Stats.hom_enumerations )

let with_obs_enabled f =
  let was = Obs.enabled () in
  if not was then Obs.enable ();
  Fun.protect ~finally:(fun () -> if not was then Obs.disable ()) f

let test_batch_counter_parity () =
  with_obs_enabled @@ fun () ->
  let seq =
    counters_of (fun () ->
        with_jobs 1 (fun () ->
            List.map (fun (a, b) -> Containment.decide a b) batch_pairs))
  in
  let par =
    counters_of (fun () ->
        with_jobs 4 (fun () -> Containment.decide_many batch_pairs))
  in
  let pp (s, h, m, e) = Printf.sprintf "solves=%d hits=%d misses=%d homs=%d" s h m e in
  Alcotest.(check string) "lp_solves / cache hits+misses / hom_enumerations"
    (pp seq) (pp par)

let test_hom_counter_parity () =
  with_obs_enabled @@ fun () ->
  let tri = Parser.parse "R(x,y), R(y,z), R(z,x)" in
  let db = random_db 1234 in
  let seq = counters_of (fun () -> with_jobs 1 (fun () -> Hom.count tri db)) in
  let par = counters_of (fun () -> with_jobs 4 (fun () -> Hom.count tri db)) in
  let _, _, _, seq_homs = seq and _, _, _, par_homs = par in
  Alcotest.(check int) "one enumeration regardless of slicing" seq_homs
    par_homs;
  Alcotest.(check int) "exactly one enumeration" 1 par_homs

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_maxii_par_eq_seq; prop_hom_count_par_eq_seq;
      prop_contained_on_par_eq_seq; prop_batch_par_eq_seq;
      prop_identical_requests_one_solve ]

let suite =
  [ ("parallel_map matches sequential", `Quick, test_map_matches_sequential);
    ("both", `Quick, test_both);
    ("deterministic exception propagation", `Quick, test_exception_propagation);
    ("nested combinators run sequentially", `Quick, test_nested_runs_sequentially);
    ("lifecycle guards inside regions", `Quick, test_lifecycle_guards);
    ("batch counter parity", `Quick, test_batch_counter_parity);
    ("hom counter parity", `Quick, test_hom_counter_parity) ]
  @ qtests
