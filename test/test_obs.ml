(* The obs layer: span nesting and self-time, the disabled fast path,
   histogram bucket boundaries, ring-buffer eviction, the trace
   export → report round-trip, snapshot-merge algebra, and the
   Stats.time_stage re-entrancy fix. *)

open Bagcqc_engine
module Obs = Bagcqc_obs

(* Every test drives the process-global obs state; start each one from a
   known-clean slate and leave tracing off for the rest of the suite. *)
let with_tracing ?ring_capacity ?max_depth ?sample_every f =
  Obs.disable ();
  Obs.enable ?ring_capacity ?max_depth ?sample_every ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable f

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  Obs.Span.with_span ~name:"root" (fun () ->
      Obs.Span.with_span ~name:"a" (fun () -> ignore (Sys.opaque_identity 1));
      Obs.Span.with_span ~name:"b" (fun () ->
          Obs.Span.with_span ~name:"b1" (fun () -> ())));
  let spans = Obs.Span.closed () in
  Alcotest.(check int) "four spans recorded" 4 (List.length spans);
  let find name = List.find (fun s -> s.Obs.Span.name = name) spans in
  let root = find "root" and a = find "a" and b = find "b" and b1 = find "b1" in
  Alcotest.(check int) "a's parent is root" root.Obs.Span.id a.Obs.Span.parent;
  Alcotest.(check int) "b1's parent is b" b.Obs.Span.id b1.Obs.Span.parent;
  Alcotest.(check int) "root is a root" (-1) root.Obs.Span.parent;
  Alcotest.(check int) "depths" 2 b1.Obs.Span.depth;
  (* The exact float identity the ring maintains: self + children = dur. *)
  List.iter
    (fun s ->
      Alcotest.(check (float 0.0))
        ("self+children=dur for " ^ s.Obs.Span.name)
        s.Obs.Span.dur
        (Obs.Span.self s +. s.Obs.Span.children))
    spans;
  Alcotest.(check bool) "root children = a.dur + b.dur" true
    (root.Obs.Span.children = a.Obs.Span.dur +. b.Obs.Span.dur);
  Alcotest.(check int) "stack empty between operations" 0 (Obs.Span.open_depth ())

let test_span_exception_safety () =
  with_tracing @@ fun () ->
  (try
     Obs.Span.with_span ~name:"outer" (fun () ->
         Obs.Span.with_span ~name:"thrower" (fun () -> failwith "boom"))
   with Failure _ -> ());
  let spans = Obs.Span.closed () in
  Alcotest.(check int) "both spans closed despite the exception" 2
    (List.length spans);
  Alcotest.(check int) "stack unwound" 0 (Obs.Span.open_depth ())

let test_disabled_fast_path () =
  Obs.disable ();
  Obs.reset ();
  let r =
    Obs.Span.with_span ~name:"ghost" (fun () ->
        Obs.Span.add_attr "k" (Obs.Span.Int 1);
        41 + 1)
  in
  Alcotest.(check int) "thunk result passes through" 42 r;
  Alcotest.(check int) "nothing recorded while disabled" 0
    (List.length (Obs.Span.closed ()));
  (* Counters stay live even when tracing is off — Stats depends on it. *)
  let c = Obs.Metrics.counter "test.disabled_counter" in
  Obs.Metrics.bump c;
  Alcotest.(check int) "counters are always on" 1 (Obs.Metrics.count c)

let test_ring_eviction () =
  with_tracing ~ring_capacity:4 @@ fun () ->
  for i = 1 to 6 do
    Obs.Span.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Span.name) (Obs.Span.closed ()) in
  Alcotest.(check (list string)) "oldest spans evicted first, order kept"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  Alcotest.(check int) "eviction counted" 2 (Obs.Span.dropped ())

let test_depth_limit () =
  with_tracing ~max_depth:2 @@ fun () ->
  let rec nest d = if d > 0 then
    Obs.Span.with_span ~name:(Printf.sprintf "d%d" d) (fun () -> nest (d - 1))
  in
  nest 5;
  (* Depths 0,1,2 record (max_depth is the deepest recorded depth);
     the two deeper calls run uninstrumented and are counted. *)
  Alcotest.(check int) "spans within the depth limit recorded" 3
    (List.length (Obs.Span.closed ()));
  Alcotest.(check int) "deeper spans counted as dropped" 2
    (Obs.Span.depth_dropped ())

(* ---------------- histograms ---------------- *)

let test_histogram_buckets () =
  (* bucket 0 = {0}; bucket i = [2^(i-1), 2^i - 1], so an exact power of
     two 2^k is the lower bound of bucket k+1. *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Obs.Metrics.bucket_of 0);
  Alcotest.(check int) "1 -> bucket 1" 1 (Obs.Metrics.bucket_of 1);
  for k = 1 to 20 do
    let v = 1 lsl k in
    Alcotest.(check int)
      (Printf.sprintf "2^%d on a bucket lower bound" k)
      v
      (Obs.Metrics.bucket_lo (Obs.Metrics.bucket_of v));
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1 on a bucket upper bound" k)
      (v - 1)
      (Obs.Metrics.bucket_hi (Obs.Metrics.bucket_of (v - 1)))
  done;
  Alcotest.(check int) "buckets partition: bucket(2^k) = bucket(2^k - 1) + 1"
    (Obs.Metrics.bucket_of 1023 + 1)
    (Obs.Metrics.bucket_of 1024)

let test_histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.percentiles" in
  (* 90 small values and 10 large: p50 small, p99 large; min/max exact. *)
  for _ = 1 to 90 do Obs.Metrics.observe h 3 done;
  for _ = 1 to 10 do Obs.Metrics.observe h 1000 done;
  let snap =
    List.assoc "test.percentiles" (Obs.Metrics.snapshot ()).Obs.Metrics.histograms
  in
  Alcotest.(check int) "count" 100 snap.Obs.Metrics.count;
  Alcotest.(check int) "p50 in the small bucket" 3
    (Obs.Metrics.percentile snap 0.5);
  Alcotest.(check int) "p99 in the large bucket" 512
    (Obs.Metrics.percentile snap 0.99);
  Alcotest.(check int) "max exact" 1000 snap.Obs.Metrics.max_value;
  (* All-identical observations report that value at every quantile
     (clamping into [min,max]). *)
  let h2 = Obs.Metrics.histogram "test.identical" in
  for _ = 1 to 7 do Obs.Metrics.observe h2 16 done;
  let s2 =
    List.assoc "test.identical" (Obs.Metrics.snapshot ()).Obs.Metrics.histograms
  in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "identical values: p%.0f = 16" (100. *. p))
        16
        (Obs.Metrics.percentile s2 p))
    [ 0.01; 0.5; 0.9; 0.99 ]

(* qcheck: merging canonical snapshots is associative and commutative.
   Generate small random snapshots through the canonicalizing
   constructor, then compare merges structurally. *)
let arb_snapshot =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let hist =
    let* count_pairs = list_size (int_range 0 4) (pair (int_range 0 8) (int_range 1 5)) in
    let* mn = int_range 0 10 in
    let* mx = int_range 0 200 in
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 count_pairs in
    let* sum = int_range 0 500 in
    return
      { Obs.Metrics.count = total; sum;
        min_value = (if total = 0 then max_int else min mn mx);
        max_value = (if total = 0 then min_int else max mn mx);
        buckets = count_pairs }
  in
  let snap =
    (* gauges stay empty here: merge is only commutative on the additive
       series (gauges are last-writer-wins by design; see the dedicated
       gauge tests). *)
    let* cs = list_size (int_range 0 3) (pair name (int_range 0 100)) in
    let* hs = list_size (int_range 0 3) (pair name hist) in
    return (Obs.Metrics.snapshot_of ~counters:cs ~histograms:hs ())
  in
  QCheck.make snap

let prop_merge_commutative =
  QCheck.Test.make ~name:"snapshot merge is commutative" ~count:200
    (QCheck.pair arb_snapshot arb_snapshot) (fun (a, b) ->
      Obs.Metrics.merge a b = Obs.Metrics.merge b a)

let prop_merge_associative =
  QCheck.Test.make ~name:"snapshot merge is associative" ~count:200
    (QCheck.triple arb_snapshot arb_snapshot arb_snapshot) (fun (a, b, c) ->
      Obs.Metrics.merge (Obs.Metrics.merge a b) c
      = Obs.Metrics.merge a (Obs.Metrics.merge b c))

(* qcheck: Json.parse ∘ Json.to_string = id.  One JSON dialect serves
   trace files, the bench comparator and the serve wire protocol, so the
   printer and parser must be exact inverses on everything the printer
   can emit (all byte strings, every finite double, nested values). *)
let arb_json =
  let open QCheck.Gen in
  let gen_float =
    oneof
      [ map float_of_int int;
        map2
          (fun a k -> float_of_int a /. (2.0 ** float_of_int k))
          int (int_bound 40);
        oneofl [ 0.0; -0.0; 1e-7; 3.141592653589793; 1e308; -1e308; 1e15 ] ]
  in
  let gen_string = string_size ~gen:char (int_bound 12) in
  let leaf =
    oneof
      [ return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun f -> Obs.Json.Num f) gen_float;
        map (fun s -> Obs.Json.Str s) gen_string ]
  in
  let tree =
    sized
    @@ fix (fun self n ->
           if n = 0 then leaf
           else
             frequency
               [ (3, leaf);
                 ( 1,
                   map
                     (fun l -> Obs.Json.Arr l)
                     (list_size (int_bound 4) (self (n / 2))) );
                 ( 1,
                   map
                     (fun fields -> Obs.Json.Obj fields)
                     (list_size (int_bound 4)
                        (pair gen_string (self (n / 2)))) ) ])
  in
  QCheck.make ~print:Obs.Json.to_string tree

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json.parse inverts Json.to_string" ~count:500
    arb_json (fun j -> Obs.Json.parse (Obs.Json.to_string j) = j)

(* ---------------- export → report round-trip ---------------- *)

let test_roundtrip format =
  with_tracing @@ fun () ->
  let h = Obs.Metrics.histogram "test.roundtrip_hist" in
  Obs.Span.with_span ~name:"root" ~attrs:[ ("mode", Obs.Span.Str "test") ]
    (fun () ->
      Obs.Span.with_span ~name:"leaf" (fun () ->
          Obs.Metrics.observe h 5;
          Obs.Metrics.observe h 64;
          Obs.Span.add_attr "pivots" (Obs.Span.Int 7)));
  let file = Filename.temp_file "bagcqc_trace" format in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Obs.Export.write file;
  let r = Obs.Report.load file in
  Alcotest.(check int) "both spans survive the round trip" 2
    (Obs.Report.span_count r);
  Alcotest.(check int) "one root" 1 (List.length r.Obs.Report.roots);
  let root = List.hd r.Obs.Report.roots in
  Alcotest.(check string) "root name" "root" root.Obs.Report.name;
  let leaf =
    match root.Obs.Report.kids with [ l ] -> l | _ -> Alcotest.fail "one child"
  in
  Alcotest.(check string) "child name" "leaf" leaf.Obs.Report.name;
  Alcotest.(check bool) "mid-span attr survives" true
    (match List.assoc_opt "pivots" leaf.Obs.Report.attrs with
     | Some (Obs.Json.Num n) -> n = 7.0
     | _ -> false);
  (* Timing survives µs serialization to within a microsecond. *)
  Alcotest.(check bool) "durations nest in the file too" true
    (leaf.Obs.Report.dur_us <= root.Obs.Report.dur_us +. 1.0);
  let snap = List.assoc_opt "test.roundtrip_hist" r.Obs.Report.metrics.Obs.Metrics.histograms in
  match snap with
  | None -> Alcotest.fail "histogram missing after round trip"
  | Some s ->
    Alcotest.(check int) "histogram count survives" 2 s.Obs.Metrics.count;
    Alcotest.(check int) "histogram max survives" 64 s.Obs.Metrics.max_value

let test_roundtrip_chrome () = test_roundtrip ".json"
let test_roundtrip_jsonl () = test_roundtrip ".jsonl"

let test_report_metrics_match_snapshot () =
  (* The exporter serializes exactly the live snapshot: reading the file
     back must reproduce Metrics.snapshot () for non-empty series. *)
  with_tracing @@ fun () ->
  let h = Obs.Metrics.histogram "test.export_hist" in
  Obs.Span.with_span ~name:"w" (fun () ->
      List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100 ]);
  let live = Obs.Metrics.snapshot () in
  let file = Filename.temp_file "bagcqc_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Obs.Export.write file;
  let r = Obs.Report.load file in
  Alcotest.(check bool) "exported histogram equals the live snapshot" true
    (List.assoc "test.export_hist" r.Obs.Report.metrics.Obs.Metrics.histograms
     = List.assoc "test.export_hist" live.Obs.Metrics.histograms)

(* ---------------- Stats as a view over obs ---------------- *)

let test_stats_time_stage_reentrant () =
  Stats.reset ();
  (* A self-nested stage must count wall time once, not twice: the inner
     activation's duration is already inside the outer one.  With the
     old implementation this totalled inner + outer > elapsed. *)
  let t0 = Unix.gettimeofday () in
  Stats.time_stage "reentrant" (fun () ->
      Stats.time_stage "reentrant" (fun () ->
          ignore (Sys.opaque_identity (Array.init 10000 Fun.id))));
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = List.assoc "reentrant" (Stats.snapshot ()).Stats.stages in
  Alcotest.(check bool) "accumulates at most once the elapsed time" true
    (total <= elapsed +. 1e-6);
  Alcotest.(check bool) "still records nonzero time" true (total > 0.0);
  (* Distinct names keep nesting inclusively, as documented. *)
  Stats.reset ();
  Stats.time_stage "outer" (fun () ->
      Stats.time_stage "inner" (fun () ->
          ignore (Sys.opaque_identity (Array.init 1000 Fun.id))));
  let s = Stats.snapshot () in
  Alcotest.(check bool) "inner <= outer" true
    (List.assoc "inner" s.Stats.stages <= List.assoc "outer" s.Stats.stages
     +. 1e-6)

let test_stats_stage_exception () =
  Stats.reset ();
  (try Stats.time_stage "fails" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "stage recorded despite the exception" true
    (List.mem_assoc "fails" (Stats.snapshot ()).Stats.stages)

let test_stats_spans () =
  (* time_stage doubles as a span emitter when tracing is on. *)
  with_tracing @@ fun () ->
  Stats.reset () (* note: resets metrics, not the span ring *);
  Stats.time_stage "eq8" (fun () -> ());
  Alcotest.(check (list string)) "stage emitted as a span" [ "eq8" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.Span.closed ()))

let suite =
  [ Alcotest.test_case "span nesting, parents, self-time" `Quick
      test_span_nesting;
    Alcotest.test_case "spans close on exceptions" `Quick
      test_span_exception_safety;
    Alcotest.test_case "disabled tracing records nothing" `Quick
      test_disabled_fast_path;
    Alcotest.test_case "ring buffer evicts oldest first" `Quick
      test_ring_eviction;
    Alcotest.test_case "depth limit drops and counts" `Quick test_depth_limit;
    Alcotest.test_case "log-bucket boundaries at powers of two" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "chrome export round-trips through report" `Quick
      test_roundtrip_chrome;
    Alcotest.test_case "jsonl export round-trips through report" `Quick
      test_roundtrip_jsonl;
    Alcotest.test_case "report metrics equal the live snapshot" `Quick
      test_report_metrics_match_snapshot;
    Alcotest.test_case "time_stage counts re-entrant stages once" `Quick
      test_stats_time_stage_reentrant;
    Alcotest.test_case "time_stage records on exception" `Quick
      test_stats_stage_exception;
    Alcotest.test_case "time_stage emits spans when tracing" `Quick
      test_stats_spans ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_merge_commutative; prop_merge_associative; prop_json_roundtrip ]
