(* Test-suite entry point: registers one Alcotest group per module family. *)

let () =
  Alcotest.run "bagcqc"
    [ ("num", Test_num.suite); ("lp", Test_lp.suite); ("engine", Test_engine.suite); ("obs", Test_obs.suite); ("prom", Test_prom.suite); ("entropy", Test_entropy.suite); ("relation", Test_relation.suite); ("cq", Test_cq.suite); ("roundtrip", Test_roundtrip.suite); ("containment", Test_containment.suite); ("domination", Test_domination.suite); ("reduction", Test_reduction.suite); ("refute", Test_refute.suite); ("dependencies", Test_deps.suite); ("group", Test_group.suite); ("bagdb", Test_bagdb.suite); ("cli", Test_cli.suite); ("transport", Test_transport.suite); ("misc", Test_misc.suite); ("treedec", Test_treedec.suite); ("par", Test_par.suite); ("check", Test_check.suite); ("store", Test_store.suite); ("corpus", Test_corpus.suite); ("serve", Test_serve.suite) ]
