(* Tests for Section 5: uniformization (Lemma 5.3), the query construction
   (Section 5.3), and the round-trip equivalence of Theorem 2.7 checked
   over the Shannon cone. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_core

let vs = Varset.of_list
let q = Rat.of_int

let term ?coeff m = Linexpr.term ?coeff m

let test_uniformize_shape () =
  (* Example 5.2's IIP: 0 ≤ h(X1) + 2h(X2) + h(X3) − h(X1X2) − h(X2X3). *)
  let e =
    Linexpr.sum
      [ term (vs [ 0 ]); term ~coeff:(q 2) (vs [ 1 ]); term (vs [ 2 ]);
        term ~coeff:(q (-1)) (vs [ 0; 1 ]); term ~coeff:(q (-1)) (vs [ 1; 2 ]) ]
  in
  let u = Reduction.uniformize (Maxii.general ~n:3 [ e ]) in
  Alcotest.(check int) "n0" 3 u.Reduction.n0;
  Alcotest.(check int) "n = max #negatives" 2 u.Reduction.n;
  Alcotest.(check int) "q = n+1" 3 u.Reduction.q;
  (match Reduction.check_uniform u with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "invariants: %s" msg);
  (* Chain: (U|∅) + (V|X0) + 2 negatives + 4 positives = 8 parts. *)
  Alcotest.(check int) "p" 7 u.Reduction.p;
  (* Uniformization preserves Γ-validity (Lemma 5.3): this IIP is valid. *)
  Alcotest.(check bool) "original valid over Γ3" true
    (Maxii.is_valid_over Cones.Gamma (Maxii.general ~n:3 [ e ]));
  Alcotest.(check bool) "uniform valid over Γ4" true
    (Maxii.is_valid_over Cones.Gamma (Reduction.uniform_maxii u))

let test_uniformize_preserves_invalidity () =
  (* 0 ≤ h(X1) − h(X1X2) is false. *)
  let e = Linexpr.sub (term (vs [ 0 ])) (term (vs [ 0; 1 ])) in
  let m = Maxii.general ~n:2 [ e ] in
  Alcotest.(check bool) "original invalid" true
    (not (Maxii.is_valid_over Cones.Gamma m));
  let u = Reduction.uniformize m in
  Alcotest.(check bool) "uniform invalid" true
    (not (Maxii.is_valid_over Cones.Gamma (Reduction.uniform_maxii u)))

let test_construction_shape_ex_5_2 () =
  (* The general construction on Example 5.2's inequality.  The paper's
     hand-built queries are a simplified variant; here we check the
     structural claims that carry over: Q2 is acyclic, the decomposition
     is the chain of (29), and |hom(Q2,Q1)| = q^n · (q·k). *)
  let e =
    Linexpr.sum
      [ term (vs [ 0 ]); term ~coeff:(q 2) (vs [ 1 ]); term (vs [ 2 ]);
        term ~coeff:(q (-1)) (vs [ 0; 1 ]); term ~coeff:(q (-1)) (vs [ 1; 2 ]) ]
  in
  let { Reduction.q1; q2; dec2 } = Reduction.reduce (Maxii.general ~n:3 [ e ]) in
  Alcotest.(check bool) "Q2 acyclic" true (Treedec.is_acyclic q2);
  Alcotest.(check bool) "dec2 valid" true (Treedec.is_valid_for q2 dec2);
  (* q = 3 adorned copies of the original 3+2 variables. *)
  Alcotest.(check int) "Q1 variables" 15 (Query.nvars q1);
  (* n=2, q=3, k=1: 3² · 3 = 27 homomorphisms. *)
  Alcotest.(check int) "hom(Q2,Q1) = q^n·qk" 27 (Hom.count_between q2 q1);
  (* Relation symbols: S1..S2 binary + R0..R_p. *)
  let voc = Query.vocabulary q2 in
  Alcotest.(check bool) "S1 present" true (List.mem_assoc "S1" voc);
  Alcotest.(check bool) "same vocabulary" true (voc = Query.vocabulary q1)

(* The paper's own hand-built Example 5.2 queries, verbatim, to check the
   claims made in the example text itself. *)
let test_example_5_2_verbatim () =
  let q1 =
    Parser.parse
      "S1(x1a), S2(x2a), S3(x2a), S4(x3a), R1(x1a,x2a,x3a), \
       R2(x1a,x2a,x1a,x2a,x3a), R3(x2a,x3a,x1a,x2a,x3a), \
       S1(x1b), S2(x2b), S3(x2b), S4(x3b), R1(x1b,x2b,x3b), \
       R2(x1b,x2b,x1b,x2b,x3b), R3(x2b,x3b,x1b,x2b,x3b), \
       S1(x1c), S2(x2c), S3(x2c), S4(x3c), R1(x1c,x2c,x3c), \
       R2(x1c,x2c,x1c,x2c,x3c), R3(x2c,x3c,x1c,x2c,x3c)"
  in
  let q2 =
    Parser.parse
      "S1(u1), S2(u2), S3(u3), S4(u4), R1(y01,y02,y03), \
       R2(y01,y02,y11,y12,y13), R3(y12,y13,y21,y22,y23)"
  in
  Alcotest.(check int) "Q1 has 9 variables" 9 (Query.nvars q1);
  Alcotest.(check int) "Q2 has 13 variables" 13 (Query.nvars q2);
  Alcotest.(check bool) "Q2 acyclic" true (Treedec.is_acyclic q2);
  (* "Q1 has 3 connected components, and Q2 has 5, therefore there are 3^5
     homomorphisms Q2 → Q1." *)
  Alcotest.(check int) "Q1 components" 3
    (List.length (Query.connected_components q1));
  Alcotest.(check int) "Q2 components" 5
    (List.length (Query.connected_components q2));
  Alcotest.(check int) "3^5 homomorphisms" 243 (Hom.count_between q2 q1)

(* Round trip over the Shannon cone: Max-II valid over Γ ⟺ Eq. 8 of the
   constructed queries valid over Γ (using the paper's decomposition 29).
   Kept tiny: Γ-LPs over Q1's variables are exponential. *)
let roundtrip maxii =
  let c = Reduction.reduce maxii in
  let ineq = Containment.eq8 ~decs:[ c.Reduction.dec2 ] c.Reduction.q1 c.Reduction.q2 in
  ( Maxii.is_valid_over Cones.Gamma maxii,
    Maxii.is_valid_over Cones.Gamma ineq )

let test_roundtrip_valid_iip () =
  (* 0 ≤ h(X1): trivially valid; n = 0, q = 1. *)
  let m = Maxii.general ~n:1 [ term (vs [ 0 ]) ] in
  let a, b = roundtrip m in
  Alcotest.(check bool) "original valid" true a;
  Alcotest.(check bool) "eq8 valid" true b

let test_roundtrip_invalid_iip () =
  (* 0 ≤ −h(X1): invalid; n = 1, q = 2. *)
  let m = Maxii.general ~n:1 [ Linexpr.neg (term (vs [ 0 ])) ] in
  let a, b = roundtrip m in
  Alcotest.(check bool) "original invalid" false a;
  Alcotest.(check bool) "eq8 invalid" false b

let test_roundtrip_valid_max () =
  (* 0 ≤ max(h(X1) − h(X1), h(X1)): valid via the second side; k = 2. *)
  let m =
    Maxii.general ~n:1
      [ Linexpr.sub (term (vs [ 0 ])) (term (vs [ 0 ])); term (vs [ 0 ]) ]
  in
  let a, b = roundtrip m in
  Alcotest.(check bool) "original valid" true a;
  Alcotest.(check bool) "eq8 valid" true b

let test_roundtrip_max_genuine () =
  (* 0 ≤ max(h(X1) − 2h(X1), 2h(X1) − h(X1)) = max(−h, h): valid, and
     genuinely needs the max. *)
  let m =
    Maxii.general ~n:1
      [ Linexpr.sub (term (vs [ 0 ])) (term ~coeff:(q 2) (vs [ 0 ]));
        Linexpr.sub (term ~coeff:(q 2) (vs [ 0 ])) (term (vs [ 0 ])) ]
  in
  let a, b = roundtrip m in
  Alcotest.(check bool) "original valid" true a;
  Alcotest.(check bool) "eq8 valid" true b;
  (* Dropping the saving side gives an invalid instance. *)
  let m' = Maxii.general ~n:1 [ Linexpr.sub (term (vs [ 0 ])) (term ~coeff:(q 2) (vs [ 0 ])) ] in
  let a', b' = roundtrip m' in
  Alcotest.(check bool) "one-sided invalid" false a';
  Alcotest.(check bool) "eq8 one-sided invalid" false b'

let test_full_circle_decide () =
  (* End to end: reduce an (in)valid IIP and run the containment decision
     procedure on the constructed queries. *)
  let m_valid = Maxii.general ~n:1 [ term (vs [ 0 ]) ] in
  let c = Reduction.reduce m_valid in
  (match Containment.decide c.Reduction.q1 c.Reduction.q2 with
   | Containment.Contained cert ->
     Alcotest.(check bool) "certificate re-verifies" true (Certificate.check cert)
   | _ -> Alcotest.fail "valid IIP must yield containment");
  let m_invalid = Maxii.general ~n:1 [ Linexpr.neg (term (vs [ 0 ])) ] in
  let c = Reduction.reduce m_invalid in
  (match Containment.decide ~max_factors:16 c.Reduction.q1 c.Reduction.q2 with
   | Containment.Not_contained w ->
     Alcotest.(check bool) "verified witness" true
       (w.Containment.hom2 < w.Containment.card_p)
   | Containment.Contained _ -> Alcotest.fail "invalid IIP must yield non-containment"
   | Containment.Unknown { reason; _ } -> Alcotest.failf "Unknown: %s" reason)

(* Property: Lemma 5.3 preserves Γ-validity on random small Max-IIs. *)
let prop_uniformize_preserves_validity =
  let n0 = 2 in
  let gen =
    QCheck.Gen.(
      let gen_side =
        let* terms =
          list_size (int_range 1 3)
            (pair (int_range 1 3) (int_range (-2) 2))
        in
        return
          (Linexpr.sum (List.map (fun (m, c) -> term ~coeff:(q c) m) terms))
      in
      let* k = int_range 1 2 in
      let* sides = list_repeat k gen_side in
      return (Maxii.general ~n:n0 sides))
  in
  QCheck.Test.make ~name:"Lemma 5.3 preserves Γ-validity" ~count:40
    (QCheck.make ~print:(Format.asprintf "%a" (Maxii.pp ())) gen)
    (fun m ->
      let u = Reduction.uniformize m in
      Reduction.check_uniform u = Ok ()
      && Maxii.is_valid_over Cones.Gamma m
         = Maxii.is_valid_over Cones.Gamma (Reduction.uniform_maxii u))

let qtests = List.map QCheck_alcotest.to_alcotest [ prop_uniformize_preserves_validity ]

let suite =
  [ ("uniformize shape (Ex 5.2)", `Quick, test_uniformize_shape);
    ("uniformize preserves invalidity", `Quick, test_uniformize_preserves_invalidity);
    ("construction shape (Ex 5.2)", `Quick, test_construction_shape_ex_5_2);
    ("Example 5.2 verbatim", `Quick, test_example_5_2_verbatim);
    ("roundtrip valid IIP", `Quick, test_roundtrip_valid_iip);
    ("roundtrip invalid IIP", `Quick, test_roundtrip_invalid_iip);
    ("roundtrip valid max", `Quick, test_roundtrip_valid_max);
    ("roundtrip genuine max", `Quick, test_roundtrip_max_genuine);
    ("full circle: reduce + decide", `Quick, test_full_circle_decide) ]
  @ qtests
