(* Tests for relations: projections, products, step/normal relations,
   domain products, total uniformity, degrees and entropies — the
   machine-checked version of the paper's Table 1. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation

let vs = Varset.of_list
let vi i = Value.Int i

let test_basic () =
  let p = Relation.of_int_rows ~arity:2 [ [ 1; 2 ]; [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "set semantics dedups" 2 (Relation.cardinal p);
  Alcotest.(check bool) "mem" true (Relation.mem [| vi 1; vi 2 |] p);
  Alcotest.(check bool) "not mem" false (Relation.mem [| vi 2; vi 1 |] p);
  Alcotest.(check int) "arity" 2 (Relation.arity p);
  Alcotest.check_raises "bad row" (Invalid_argument "Relation: row arity mismatch")
    (fun () -> ignore (Relation.of_list ~arity:2 [ [| vi 1 |] ]))

let test_generalized_projection () =
  (* Section 3.1 example: Q1 = R(x,x,y), P = {(a,b)}: Π_xxy(P) = {(a,a,b)}. *)
  let p = Relation.of_int_rows ~arity:2 [ [ 10; 20 ] ] in
  let r = Relation.project [| 0; 0; 1 |] p in
  Alcotest.(check int) "arity 3" 3 (Relation.arity r);
  Alcotest.(check bool) "row (a,a,b)" true (Relation.mem [| vi 10; vi 10; vi 20 |] r);
  (* Projection onto a set of columns *)
  let p2 = Relation.of_int_rows ~arity:3 [ [ 1; 2; 3 ]; [ 1; 2; 4 ] ] in
  let r2 = Relation.project_set (vs [ 0; 1 ]) p2 in
  Alcotest.(check int) "dedup after projection" 1 (Relation.cardinal r2)

let test_product () =
  let p = Relation.product_of_sizes [ 2; 3; 4 ] in
  Alcotest.(check int) "cardinality" 24 (Relation.cardinal p);
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p);
  (* Empty factor *)
  let e = Relation.product [ [ vi 1 ]; [] ] in
  Alcotest.(check bool) "empty product" true (Relation.is_empty e)

let test_step_relation () =
  (* P_W from Sec 3.2: two rows agreeing exactly on W; its entropy is the
     step function h_W. *)
  let n = 3 in
  let w = vs [ 1 ] in
  let p = Relation.step_relation ~n w in
  Alcotest.(check int) "two rows" 2 (Relation.cardinal p);
  let hw = Polymatroid.step n w in
  Varset.iter_subsets (Varset.full n) (fun x ->
      match Relation.entropy_exact p x with
      | None -> Alcotest.fail "step relation must have uniform marginals"
      | Some e ->
        let expected =
          Logint.scale (Polymatroid.value hw x) (Logint.log_int 2)
        in
        Alcotest.(check bool)
          (Format.asprintf "entropy at %a" (Varset.pp ()) x)
          true
          (Logint.equal e expected))

let test_domain_product_entropy_adds () =
  (* Table 1: P = P1 ⊗ P2 has h = h1 + h2. *)
  let p1 = Relation.step_relation ~n:3 (vs [ 0 ]) in
  let p2 = Relation.step_relation ~n:3 (vs [ 1; 2 ]) in
  let p = Relation.domain_product p1 p2 in
  Alcotest.(check int) "4 rows" 4 (Relation.cardinal p);
  Varset.iter_subsets (Varset.full 3) (fun x ->
      let e = Option.get (Relation.entropy_exact p x) in
      let e1 = Option.get (Relation.entropy_exact p1 x) in
      let e2 = Option.get (Relation.entropy_exact p2 x) in
      Alcotest.(check bool) "h = h1 + h2" true
        (Logint.equal e (Logint.add e1 e2)))

let test_normal_relation_def_3_3 () =
  (* Definition 3.3's example: {(uv,u,v,v) | u,v ∈ [n]} with 4 attributes.
     Built as ψ over the product [n] × [n], ψ = [{0,1};{0};{1};{1}]. *)
  let p = Relation.product_of_sizes [ 3; 3 ] in
  let nr = Relation.normal_of_map ~psi:[| vs [ 0; 1 ]; vs [ 0 ]; vs [ 1 ]; vs [ 1 ] |] p in
  Alcotest.(check int) "9 rows" 9 (Relation.cardinal nr);
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform nr);
  (* First attribute is a key: deg(rest | first) = 1. *)
  Alcotest.(check (option int)) "uv is a key" (Some 1)
    (Relation.degree nr ~y:(vs [ 1; 2; 3 ]) ~x:(vs [ 0 ]));
  (* Last two attributes are equal: deg({3} | {2}) = 1, both columns [n]. *)
  Alcotest.(check (option int)) "v determines v" (Some 1)
    (Relation.degree nr ~y:(vs [ 3 ]) ~x:(vs [ 2 ]))

let test_of_normal_steps () =
  (* Realize 2·h_{W1} + 1·h_{W2}: entropies must match the normal
     polymatroid (in units of log 2). *)
  let n = 3 in
  let coeffs = [ (vs [ 0 ], 2); (vs [ 1; 2 ], 1) ] in
  let p = Relation.of_normal_steps ~n coeffs in
  Alcotest.(check int) "8 rows" 8 (Relation.cardinal p);
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p);
  let h =
    Polymatroid.normal_of_steps n
      (List.map (fun (w, c) -> (w, Rat.of_int c)) coeffs)
  in
  Varset.iter_subsets (Varset.full n) (fun x ->
      let e = Option.get (Relation.entropy_exact p x) in
      let expected = Logint.scale (Polymatroid.value h x) (Logint.log_int 2) in
      Alcotest.(check bool) "matches polymatroid" true (Logint.equal e expected))

let test_parity_relation () =
  (* Example E.2 / B.4: the parity relation is totally uniform and its
     entropy is the (non-normal) parity function. *)
  let p =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
  in
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p);
  let check_h x expected_pow =
    let e = Option.get (Relation.entropy_exact p (vs x)) in
    Alcotest.(check bool)
      (Printf.sprintf "h = %d bits" expected_pow)
      true
      (Logint.equal e (Logint.scale (Rat.of_int expected_pow) (Logint.log_int 2)))
  in
  check_h [ 0 ] 1;
  check_h [ 0; 1 ] 2;
  check_h [ 0; 1; 2 ] 2

let test_not_totally_uniform () =
  let p = Relation.of_int_rows ~arity:2 [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.(check bool) "not totally uniform" false (Relation.is_totally_uniform p);
  Alcotest.(check (option int)) "degree undefined" None
    (Relation.degree p ~y:(vs [ 1 ]) ~x:(vs [ 0 ]));
  (* Float entropy of the skewed marginal: H(2/3,1/3) ≈ 0.918. *)
  let h = Relation.entropy_float p (vs [ 0 ]) in
  Alcotest.(check bool) "entropy in range" true (h > 0.91 && h < 0.93);
  Alcotest.(check bool) "no exact entropy" true
    (Relation.entropy_exact p (vs [ 0 ]) = None)

let test_degree_lemma_4_6 () =
  (* Lemma 4.6(2): for totally uniform P, deg(Y|X) = |Π_XY P| / |Π_X P|. *)
  let p = Relation.of_normal_steps ~n:4 [ (vs [ 0; 1 ], 1); (vs [ 2 ], 2) ] in
  Alcotest.(check bool) "totally uniform" true (Relation.is_totally_uniform p);
  let check_pair y x =
    let d = Option.get (Relation.degree p ~y ~x) in
    let num = Relation.cardinal (Relation.project_set (Varset.union x y) p) in
    let den = Relation.cardinal (Relation.project_set x p) in
    Alcotest.(check int) "deg = |XY|/|X|" (num / den) d;
    Alcotest.(check int) "divides evenly" 0 (num mod den)
  in
  check_pair (vs [ 1 ]) (vs [ 0 ]);
  check_pair (vs [ 2; 3 ]) (vs [ 0 ]);
  check_pair (vs [ 3 ]) (vs [ 0; 1; 2 ])

(* Property: domain products of random step relations (i.e. normal
   relations) are always totally uniform, and entropies always add. *)
let prop_normal_relations_uniform =
  let n = 3 in
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 4) (int_range 0 ((1 lsl n) - 2))
      |> map (fun ws -> List.map (fun w -> (w, 1)) ws))
  in
  QCheck.Test.make ~name:"normal relations are totally uniform" ~count:100
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map (fun (w, _) -> string_of_int w) l))
       gen)
    (fun coeffs ->
      let merged =
        (* of_normal_steps requires positive multiplicities; merge dups. *)
        List.sort_uniq compare coeffs
      in
      let p = Relation.of_normal_steps ~n merged in
      Relation.is_totally_uniform p)

let prop_projection_composes =
  QCheck.Test.make ~name:"projection composes: Π_ψ(Π_φ P) = Π_{φ∘ψ} P" ~count:100
    (QCheck.make
       ~print:(fun _ -> "rows")
       QCheck.Gen.(
         let* rows = list_size (int_range 1 8) (list_repeat 3 (int_range 0 3)) in
         let* phi = list_repeat 4 (int_range 0 2) in
         let* psi = list_repeat 2 (int_range 0 3) in
         return (rows, phi, psi)))
    (fun (rows, phi, psi) ->
      let p = Relation.of_int_rows ~arity:3 rows in
      let phi = Array.of_list phi and psi = Array.of_list psi in
      let lhs = Relation.project psi (Relation.project phi p) in
      let rhs = Relation.project (Array.map (fun j -> phi.(j)) psi) p in
      Relation.equal lhs rhs)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_normal_relations_uniform; prop_projection_composes ]

let test_value_hash () =
  let open Value in
  (* The pre-mixer hash was symmetric in nested annotations:
     Tag ("a", Tag ("b", v)) and Tag ("b", Tag ("a", v)) always collided,
     and hom-counting hash tables over twice-annotated databases
     degenerated to linear probes.  Pin the separation down. *)
  let v = Int 7 in
  Alcotest.(check bool) "nested tag swap separates" true
    (hash (Tag ("a", Tag ("b", v))) <> hash (Tag ("b", Tag ("a", v))));
  Alcotest.(check bool) "pair swap separates" true
    (hash (Pair (Int 1, Int 2)) <> hash (Pair (Int 2, Int 1)));
  Alcotest.(check bool) "constructors separate" true
    (hash (Pair (Int 1, Int 2)) <> hash (Tuple [ Int 1; Int 2 ]));
  (* Large ints used to drive the product into the sign bit. *)
  let samples =
    [ Int max_int; Int min_int; Int (-1); Str "x";
      Tag ("a", Tag ("b", Tag ("c", Int max_int)));
      Tuple [ Pair (Int max_int, Str "y"); Tag ("t", Int 3) ] ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "hash is non-negative" true (hash s >= 0))
    samples;
  (* Consistency with equal: structurally equal values hash equal. *)
  Alcotest.(check int) "equal values collide"
    (hash (Tag ("a", Pair (Int 1, Str "s"))))
    (hash (Tag ("a", Pair (Int 1, Str "s"))))

let suite =
  [ ("basic", `Quick, test_basic);
    ("value hash mixing", `Quick, test_value_hash);
    ("generalized projection", `Quick, test_generalized_projection);
    ("product", `Quick, test_product);
    ("step relation (Table 1)", `Quick, test_step_relation);
    ("domain product adds entropies (Table 1)", `Quick, test_domain_product_entropy_adds);
    ("normal relation (Def 3.3)", `Quick, test_normal_relation_def_3_3);
    ("of_normal_steps", `Quick, test_of_normal_steps);
    ("parity relation (Ex E.2)", `Quick, test_parity_relation);
    ("non-uniform relation", `Quick, test_not_totally_uniform);
    ("degree (Lemma 4.6)", `Quick, test_degree_lemma_4_6) ]
  @ qtests
