(* Bench-regression comparator: `compare.exe OLD.json NEW.json` diffs two
   files produced by `main.exe --json` and exits nonzero if any (suite,
   experiment, size) point slowed down by more than the threshold
   (default 20%, override with `--threshold 0.3`).  Points also need to
   slow down by at least `--min-delta` seconds (default 50us) to count:
   sub-millisecond medians jitter by tens of percent run to run, and a
   gate that cries wolf on machine noise protects nothing.  Baseline
   points missing from the new run also fail the gate, and the "jobs"
   header of each file is echoed so cross-pool-size diffs are obvious.

   JSON comes from the in-tree Bagcqc_obs.Json (the build environment
   has no JSON library): the same parser that reads --trace files and
   serve requests also reads the bench schema, so there is exactly one
   JSON dialect in the repo. *)

open Bagcqc_obs.Json

exception Parse_error = Bagcqc_obs.Json.Parse_error

(* ---------------- extraction ---------------- *)

(* (suite, experiment id, size) -> gate seconds.  Prefers the min-of-reps
   statistic (stable under machine-load drift) and falls back to the
   median for files written before min_s existed.  Also returns the pool
   size the run used ("jobs" header field; None for files written before
   it existed). *)
let points_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let root = parse text in
  (match member "schema" root with
   | Str "bagcqc-bench/1" -> ()
   | _ -> raise (Parse_error (path ^ ": unknown schema")));
  let jobs =
    match root with
    | Obj fields ->
      (match List.assoc_opt "jobs" fields with
       | Some (Num f) -> Some (int_of_float f)
       | _ -> None)
    | _ -> None
  in
  let lp_engine =
    (* None for files written before the hybrid LP engine existed. *)
    match root with
    | Obj fields ->
      (match List.assoc_opt "lp_engine" fields with
       | Some (Str s) -> Some s
       | _ -> None)
    | _ -> None
  in
  (jobs, lp_engine),
  List.concat_map
    (fun suite ->
      let sname = as_str (member "suite" suite) in
      List.concat_map
        (fun e ->
          let id = as_str (member "id" e) in
          List.map
            (fun p ->
              let gate =
                match p with
                | Obj fields when List.mem_assoc "min_s" fields ->
                  as_num (member "min_s" p)
                | _ -> as_num (member "median_s" p)
              in
              ((sname, id, int_of_float (as_num (member "size" p))), gate))
            (as_arr (member "sizes" e)))
        (as_arr (member "experiments" suite)))
    (as_arr (member "suites" root))

(* ---------------- diff ---------------- *)

let () =
  let threshold = ref 0.20 in
  let min_delta = ref 5e-5 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f > 0.0 -> threshold := f
       | _ -> prerr_endline "compare: bad --threshold"; exit 2);
      parse_args rest
    | "--min-delta" :: v :: rest ->
      (match float_of_string_opt v with
       | Some f when f >= 0.0 -> min_delta := f
       | _ -> prerr_endline "compare: bad --min-delta"; exit 2);
      parse_args rest
    | arg :: rest -> files := arg :: !files; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ old_file; new_file ] ->
    let ((old_jobs, old_engine), old_points), ((new_jobs, new_engine), new_points)
        =
      try (points_of_file old_file, points_of_file new_file)
      with
      | Parse_error msg -> Printf.eprintf "compare: %s\n" msg; exit 2
      | Sys_error msg -> Printf.eprintf "compare: %s\n" msg; exit 2
    in
    let pp_jobs = function
      | Some j -> string_of_int j
      | None -> "?" (* file predates the "jobs" header field *)
    in
    let pp_engine = function
      | Some e -> e
      | None -> "?" (* file predates the "lp_engine" header field *)
    in
    Printf.printf "jobs: old=%s new=%s\n" (pp_jobs old_jobs) (pp_jobs new_jobs);
    Printf.printf "lp_engine: old=%s new=%s\n" (pp_engine old_engine)
      (pp_engine new_engine);
    (match old_jobs, new_jobs with
     | Some a, Some b when a <> b ->
       Printf.printf
         "warning: runs used different pool sizes; timings are not \
          comparable like for like\n"
     | _ -> ());
    (match old_engine, new_engine with
     | Some a, Some b when a <> b ->
       Printf.printf
         "warning: runs used different default LP engines; unpinned \
          experiments are not comparable like for like\n"
     | _ -> ());
    let regressions = ref 0 in
    let missing = ref 0 in
    Printf.printf "%-40s %12s %12s %8s\n" "suite/experiment/size" "old (s)"
      "new (s)" "ratio";
    List.iter
      (fun ((suite, id, size) as key, t_new) ->
        match List.assoc_opt key old_points with
        | None ->
          Printf.printf "%-40s %12s %12.6f %8s\n"
            (Printf.sprintf "%s/%s/%d" suite id size)
            "-" t_new "new"
        | Some t_old ->
          let ratio = if t_old > 0.0 then t_new /. t_old else infinity in
          let flag =
            if ratio > 1.0 +. !threshold && t_new -. t_old > !min_delta
            then begin
              incr regressions;
              "  REGRESSION"
            end
            else if ratio < 1.0 -. !threshold then "  improved"
            else ""
          in
          Printf.printf "%-40s %12.6f %12.6f %8.2f%s\n"
            (Printf.sprintf "%s/%s/%d" suite id size)
            t_old t_new ratio flag)
      new_points;
    (* A baseline point absent from the new run is a hard failure, not a
       footnote: a silently dropped experiment is how a perf gate rots. *)
    List.iter
      (fun ((suite, id, size), _) ->
        if not (List.mem_assoc (suite, id, size) new_points) then begin
          incr missing;
          Printf.printf
            "%-40s MISSING: baseline experiment absent from new run\n"
            (Printf.sprintf "%s/%s/%d" suite id size)
        end)
      old_points;
    if !regressions > 0 || !missing > 0 then begin
      if !regressions > 0 then
        Printf.printf "%d regression(s) beyond %.0f%%\n" !regressions
          (100.0 *. !threshold);
      if !missing > 0 then
        Printf.printf
          "%d baseline point(s) missing from the new run (rerun with the \
           full suite, or regenerate the baseline if the experiment was \
           intentionally removed)\n"
          !missing;
      exit 1
    end
    else Printf.printf "no regressions beyond %.0f%%\n" (100.0 *. !threshold)
  | _ ->
    prerr_endline
      "usage: compare.exe [--threshold F] [--min-delta SECONDS] OLD.json NEW.json";
    exit 2
