(* Timing suites behind `main.exe --json FILE`: wall-clock medians for the
   scaling experiments, written as JSON so `compare.exe` can diff two runs
   and flag regressions.  The JSON is emitted by hand (no JSON library in
   the build environment); the schema is flat on purpose:

     { "schema": "bagcqc-bench/1",
       "suites": [
         { "suite": "lp",
           "experiments": [
             { "id": "e11_gamma_sparse",
               "sizes": [ { "size": 4, "reps": 15,
                            "median_s": 2.1e-4, "min_s": 1.9e-4 } ] } ] } ] }

   Experiment constructions are frozen (fixed PRNG seeds, fixed sizes) so
   medians from different commits are comparable. *)

open Bagcqc_lp
open Bagcqc_engine
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core
module Obs = Bagcqc_obs

let vs = Varset.of_list

(* ---------------- timing ---------------- *)

let median samples =
  let a = List.sort compare samples in
  List.nth a (List.length a / 2)

(* Median for human-facing scaling numbers, minimum for the regression
   gate: on a shared machine the whole process drifts 30-60% with CPU
   contention, and the min of many reps is by far the most reproducible
   statistic for CPU-bound code.

   The fast experiments finish a single call in single-digit microseconds,
   the same order as gettimeofday's tick, so a one-call sample is mostly
   timer quantization.  Each sample therefore repeats the call in an inner
   loop calibrated (by doubling) until one batch takes at least 1ms, and
   reports batch time divided by batch count. *)
let time_samples ~reps f =
  ignore (f ());
  (* warm-up *)
  let rec calibrate batch =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      ignore (f ())
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 1e-3 || batch >= 65536 then batch else calibrate (batch * 2)
  in
  let batch = calibrate 1 in
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to batch do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int batch)
  in
  (median samples, List.fold_left Float.min Float.infinity samples)

(* One measured point: experiment id, size parameter, reps, median/min. *)
type point = { size : int; reps : int; median_s : float; min_s : float }
type experiment = { id : string; points : point list }

let run_points ~reps sizes f =
  List.map
    (fun size ->
      let median_s, min_s = time_samples ~reps (f size) in
      { size; reps; median_s; min_s })
    sizes

(* ---------------- LP suite ---------------- *)

let shannon_target n =
  Linexpr.sub (Linexpr.term (Varset.full n)) (Linexpr.term (vs [ 0 ]))

let with_engine engine f =
  let saved = !Simplex.default_engine in
  Simplex.default_engine := engine;
  Fun.protect ~finally:(fun () -> Simplex.default_engine := saved) f

(* The pre-hybrid experiment ids are pinned to [Exact] so their medians
   keep measuring the exact simplex regardless of what [BAGCQC_LP] or
   [--lp-engine] set the process default to — ids are frozen contracts
   with older baseline files.  Hybrid ids opt into [Float_first]
   explicitly for the same reason. *)
let with_mode mode f =
  let saved = !Simplex.default_mode in
  Simplex.default_mode := mode;
  Fun.protect ~finally:(fun () -> Simplex.default_mode := saved) f

(* The cone-engine analogue of [with_mode]: every Γn id that predates
   the lazy separation driver pins [Cones.default_engine] to [Full] so
   its baselines keep measuring the materialized elemental family; the
   *_lazy ids opt into [Lazy] explicitly. *)
let with_cone engine f =
  let saved = !Cones.default_engine in
  Cones.default_engine := engine;
  Fun.protect ~finally:(fun () -> Cones.default_engine := saved) f

(* LP timing must bypass the engine's solve cache: with it on, every rep
   after the first is a table lookup and the baselines stop measuring the
   simplex at all (and dense-vs-sparse points would alias to whichever
   engine populated the cache first). *)
let without_cache f =
  let saved = !Solver.caching in
  Solver.caching := false;
  Solver.clear ();
  Fun.protect ~finally:(fun () -> Solver.caching := saved) f

let ingleton =
  let i_pair a b x = Linexpr.mutual (vs [ a ]) (vs [ b ]) (vs x) in
  Linexpr.sub
    (Linexpr.sum [ i_pair 0 1 [ 2 ]; i_pair 0 1 [ 3 ]; i_pair 2 3 [] ])
    (i_pair 0 1 [])

let path k =
  (* R(x1,x2), ..., k atoms: the E8/E11 path family of the harness. *)
  Query.make ~nvars:(k + 1)
    (List.init k (fun i -> Query.atom "R" [ i; i + 1 ]))

(* The certificate (Farkas) LP for the n-variable Shannon monotonicity
   target, as a raw simplex problem: the "decide point" workload that the
   float-first engine exists for, measured below without the surrounding
   elemental-family construction and axiom bookkeeping. *)
let gamma_farkas_problem n =
  match Cones.find_backend "gamma" with
  | Some { Cones.farkas = Some build; _ } ->
    Problem.to_simplex (fst (build ~n [ shannon_target n ]))
  | Some _ | None -> invalid_arg "gamma backend with farkas builder"

let lp_suite ~smoke =
  let ns = if smoke then [ 2; 3 ] else [ 2; 3; 4; 5 ] in
  let hybrid_ns = if smoke then [ 2; 3 ] else [ 2; 3; 4; 5; 6 ] in
  let reps = if smoke then 2 else 15 in
  let raw_solver =
    without_cache @@ fun () ->
    with_mode Simplex.Exact @@ fun () ->
    with_cone Cones.Full @@ fun () ->
    [ { id = "e11_gamma_sparse";
        points =
          run_points ~reps ns (fun n () ->
              with_engine Simplex.Sparse (fun () ->
                  Cones.valid_shannon ~n (shannon_target n))) };
      { id = "e11_gamma_dense";
        points =
          run_points ~reps ns (fun n () ->
              with_engine Simplex.Dense (fun () ->
                  Cones.valid_shannon ~n (shannon_target n))) };
      (* Invalid inequality: exercises both the failed certificate LP and
         the primal refuter LP (size is fixed at n = 4). *)
      { id = "ingleton_gamma_full";
        points =
          run_points ~reps:(if smoke then 2 else 15) [ 4 ] (fun n () ->
              Cones.valid Cones.Gamma ~n ingleton) } ]
  in
  (* Same end-to-end workload as e11_gamma_sparse under the float-first
     engine, one size further out (n=6 is affordable only here). *)
  let hybrid =
    without_cache @@ fun () ->
    with_mode Simplex.Float_first @@ fun () ->
    with_cone Cones.Full @@ fun () ->
    [ { id = "e11_gamma_hybrid";
        points =
          run_points ~reps hybrid_ns (fun n () ->
              with_engine Simplex.Sparse (fun () ->
                  Cones.valid_shannon ~n (shannon_target n))) } ]
  in
  (* Lazy cone-engine frontier: the e11 workload again under the lazy
     separation driver (float-first LP underneath, like the hybrid id),
     pushed to n=7 — a size the materialized family has never reached in
     bench time.  [ingleton_gamma_lazy] times the refuted path, where
     the loop must run the implicit separation oracle to a genuine Γn
     refuter; [cert_gamma_lazy] times validity *with* certificate
     assembly, i.e. including the terminal restricted-Farkas solve and
     the exact check. *)
  let lazy_ns = if smoke then [ 2; 3 ] else [ 2; 3; 4; 5; 6; 7 ] in
  let lazy_engine =
    without_cache @@ fun () ->
    with_mode Simplex.Float_first @@ fun () ->
    with_cone Cones.Lazy @@ fun () ->
    [ { id = "e11_gamma_lazy";
        points =
          run_points ~reps lazy_ns (fun n () ->
              with_engine Simplex.Sparse (fun () ->
                  Cones.valid_shannon ~n (shannon_target n))) };
      { id = "ingleton_gamma_lazy";
        points =
          run_points ~reps:(if smoke then 2 else 15) [ 4 ] (fun n () ->
              Cones.valid Cones.Gamma ~n ingleton) };
      { id = "cert_gamma_lazy";
        points =
          run_points ~reps (if smoke then [ 3 ] else [ 4; 5; 6; 7 ])
            (fun n () ->
              Cones.valid_max_cert Cones.Gamma ~n [ shannon_target n ]) } ]
  in
  (* Solver-only decide points: the Farkas LP is built once per size and
     the thunk times nothing but [Simplex.solve], so the exact/hybrid
     ratio here is the honest speedup of the LP engine itself (the
     end-to-end e11 ids share cone-construction overhead between modes).
     [Simplex.solve] never consults the engine cache, so no cache guard
     is needed. *)
  let decide_points =
    let decide ~id ~mode sizes =
      { id;
        points =
          run_points ~reps sizes (fun n ->
              let sp = gamma_farkas_problem n in
              fun () -> Simplex.solve ~mode sp) }
    in
    [ decide ~id:"lp_decide_gamma_exact" ~mode:Simplex.Exact
        (if smoke then [ 3 ] else [ 4; 5 ]);
      decide ~id:"lp_decide_gamma_hybrid" ~mode:Simplex.Float_first
        (if smoke then [ 3 ] else [ 4; 5; 6 ]) ]
  in
  (* Repeated full decide on the same pair, with and without the engine's
     LP cache: the cached variant is warmed by time_samples' warm-up call,
     so every measured rep answers its solves from the cache. *)
  let decide_sizes = if smoke then [ 3 ] else [ 3; 4; 5 ] in
  let cache_pair =
    with_mode Simplex.Exact @@ fun () ->
    with_cone Cones.Full @@ fun () ->
    [ { id = "decide_path_repeat_uncached";
        points =
          run_points ~reps decide_sizes (fun n ->
              let p = path (n - 1) in
              fun () ->
                without_cache (fun () -> ignore (Containment.decide p p))) };
      { id = "decide_path_repeat_cached";
        points =
          run_points ~reps decide_sizes (fun n ->
              let p = path (n - 1) in
              Solver.clear ();
              fun () -> ignore (Containment.decide p p)) } ]
  in
  raw_solver @ hybrid @ lazy_engine @ decide_points @ cache_pair

(* ---------------- hom suite ---------------- *)

let random_digraph ~seed ~nodes ~edges =
  let st = Random.State.make [| seed |] in
  let db = ref Database.empty in
  for _ = 1 to edges do
    db :=
      Database.add_row "R"
        [| Value.Int (Random.State.int st nodes);
           Value.Int (Random.State.int st nodes) |]
        !db
  done;
  !db

let hom_suite ~smoke =
  let reps = if smoke then 2 else 15 in
  let tri_sizes = if smoke then [ 10; 20 ] else [ 10; 20; 40; 80 ] in
  let con_sizes = if smoke then [ 20 ] else [ 20; 60; 120 ] in
  let tri = Parser.parse "R(x,y), R(y,z), R(z,x)" in
  let q1 = Parser.parse "Q(x) :- R(x,y)" in
  let q2 = Parser.parse "Q(x) :- R(x,y), R(x,z)" in
  [ { id = "hom_triangle_count";
      points =
        run_points ~reps tri_sizes (fun sz ->
            let db = random_digraph ~seed:42 ~nodes:sz ~edges:(sz * 4) in
            fun () -> Hom.count tri db) };
    { id = "hom_contained_on";
      points =
        run_points ~reps con_sizes (fun sz ->
            let db = random_digraph ~seed:7 ~nodes:sz ~edges:(sz * 3) in
            fun () -> Hom.contained_on q1 q2 db) } ]

(* ---------------- par suite ---------------- *)

(* Jobs-scaling points: "size" is the pool size (1/2/4), set via
   Pool.set_jobs before each point's construction and restored after the
   suite.  Two workloads: a fan-out of independent Shannon-validity LPs
   (Cones.valid_shannon_many, cache off so every rep solves), and a batch
   of full containment decides (Containment.decide_many — the engine
   behind `check --batch`).  At jobs=1 both take the sequential path
   byte-for-byte, so the size=1 row doubles as the sequential baseline. *)
let par_suite ~smoke =
  let reps = if smoke then 2 else 9 in
  let jobs_sizes = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let n = 5 in
  let fanout_exprs =
    (* 15 distinct valid Shannon inequalities at n=5: monotonicity
       h(full) >= h(full \ {i}), plus (conditional) mutual-information
       nonnegativity over the index pairs. *)
    List.init n (fun i ->
        Linexpr.sub
          (Linexpr.term (Varset.full n))
          (Linexpr.term (Varset.remove i (Varset.full n))))
    @ List.concat_map
        (fun i ->
          List.filter_map
            (fun j ->
              if i < j then
                Some
                  (Linexpr.mutual (vs [ i ]) (vs [ j ])
                     (vs (if (i + j) mod 2 = 0 then [] else [ (j + 1) mod n ])))
              else None)
            (List.init n Fun.id))
        (List.init n Fun.id)
  in
  let batch_pairs =
    let tri = Parser.parse "R(x,y), R(y,z), R(z,x)" in
    let vee = Parser.parse "R(x,y), R(x,z)" in
    List.concat_map
      (fun k -> [ (path k, path k); (tri, vee); (vee, tri) ])
      [ 2; 3; 4; 5 ]
  in
  let saved_jobs = Bagcqc_par.Pool.jobs () in
  Fun.protect ~finally:(fun () -> Bagcqc_par.Pool.set_jobs saved_jobs)
  @@ fun () ->
  (* Frozen ids again: the jobs-scaling baselines predate the hybrid
     engine and the lazy cone driver, so they stay pinned to the exact
     simplex over the materialized family. *)
  with_mode Simplex.Exact @@ fun () ->
  with_cone Cones.Full @@ fun () ->
  [ { id = "par_e11_fanout";
      points =
        run_points ~reps jobs_sizes (fun jobs ->
            Bagcqc_par.Pool.set_jobs jobs;
            fun () ->
              without_cache (fun () ->
                  Cones.valid_shannon_many ~n fanout_exprs)) };
    { id = "par_batch_decide";
      points =
        run_points ~reps jobs_sizes (fun jobs ->
            Bagcqc_par.Pool.set_jobs jobs;
            fun () ->
              without_cache (fun () ->
                  Containment.decide_many batch_pairs)) } ]

(* ---------------- serve suite ---------------- *)

(* End-to-end daemon service time over a real Unix socket: "size" is
   again the pool size.  One sample = one pipelined burst (every request
   written before any reply is read), so a burst exercises the reader
   thread, the admission queue, the dispatcher's pool fan-out and reply
   serialization together; the recorded figure is burst time divided by
   burst size — per-request service time under full pipelining, the
   reciprocal of requests/second.  Two ids bracket the cold-vs-warm
   axis: [serve_burst_cold] wipes tier 0 before every burst with no
   store attached, so each burst pays full LP solves;
   [serve_burst_warm_store] also wipes tier 0 but serves from a
   pre-populated persistent store, so the delta between the ids is the
   solve work a restarted daemon avoids by warm-starting from disk.
   The timed bursts run with obs recording off (like every other
   suite); [serve_metrics_burst] below reruns the workload inside the
   report block's recording window so the serve.queue_us/serve.solve_us
   histograms — the p50/p99 latency source — land in the emitted
   "histograms" key. *)
let serve_request_lines =
  let check i (q1, q2) =
    Obs.Json.to_string
      (Obs.Json.Obj
         [ ("id", Obs.Json.Num (float_of_int i));
           ("op", Obs.Json.Str "check");
           ("q1", Obs.Json.Str q1);
           ("q2", Obs.Json.Str q2) ])
  in
  let path_str k =
    String.concat ", "
      (List.init k (fun i -> Printf.sprintf "R(x%d,x%d)" i (i + 1)))
  in
  (* Nine distinct instances (so tier 0 dedups nothing within a burst),
     same shape family as par_batch_decide. *)
  List.mapi check
    (List.concat_map
       (fun k ->
         [ (path_str k, path_str k);
           ("R(x,y), R(y,z), R(z,x)", "R(x,y), R(x,z)");
           ("R(x,y), R(x,z)", "R(x,y), R(y,z), R(z,x)") ])
       [ 2; 3; 4 ])

let with_serve_server ?(configure = Fun.id) ~jobs f =
  Bagcqc_par.Pool.set_jobs jobs;
  let sock = Filename.temp_file "bagcqc-bench-serve" ".sock" in
  Sys.remove sock;
  let addr = Bagcqc_serve.Protocol.Unix_path sock in
  let cfg =
    configure
      { (Bagcqc_serve.Server.default_config addr) with
        Bagcqc_serve.Server.banner = false }
  in
  let server = Thread.create Bagcqc_serve.Server.run cfg in
  let c = Bagcqc_serve.Client.connect ~retry_ms:5000 addr in
  Fun.protect
    ~finally:(fun () ->
      (try
         ignore
           (Bagcqc_serve.Client.request c
              (Obs.Json.Obj
                 [ ("id", Obs.Json.Null); ("op", Obs.Json.Str "shutdown") ]))
       with _ -> ());
      Bagcqc_serve.Client.close c;
      Thread.join server)
    (fun () -> f c)

let serve_burst c =
  List.iter (Bagcqc_serve.Client.send_line c) serve_request_lines;
  List.iter
    (fun _ ->
      match Bagcqc_serve.Client.recv_line c with
      | Some _ -> ()
      | None -> failwith "serve bench: connection closed mid-burst")
    serve_request_lines

(* One untimed burst with recording on, for the report block's
   histograms; a no-op pool-size set keeps the caller's jobs level. *)
let serve_metrics_burst () =
  with_serve_server ~jobs:(Bagcqc_par.Pool.jobs ()) serve_burst

let serve_suite ~smoke =
  (* Bursts are a few ms each, and their latency is bimodal (it depends
     on when the dispatcher wakes relative to the pipelined writes), so
     the serve ids need more reps than the CPU-bound suites for the
     min-of-reps gate statistic to settle on the fast mode. *)
  let reps = if smoke then 2 else 31 in
  let jobs_sizes = if smoke then [ 1 ] else [ 1; 4 ] in
  let n_req = List.length serve_request_lines in
  let time_bursts c =
    for _ = 1 to 3 do
      serve_burst c
    done;
    (* warm-up; for the warm id this also populates the store *)
    let samples =
      List.init reps (fun _ ->
          Solver.clear ();
          let t0 = Unix.gettimeofday () in
          serve_burst c;
          (Unix.gettimeofday () -. t0) /. float_of_int n_req)
    in
    { size = Bagcqc_par.Pool.jobs ();
      reps;
      median_s = median samples;
      min_s = List.fold_left Float.min Float.infinity samples }
  in
  let saved_jobs = Bagcqc_par.Pool.jobs () in
  Fun.protect ~finally:(fun () -> Bagcqc_par.Pool.set_jobs saved_jobs)
  @@ fun () ->
  with_mode Simplex.Exact @@ fun () ->
  with_cone Cones.Full @@ fun () ->
  [ { id = "serve_burst_cold";
      points =
        List.map (fun jobs -> with_serve_server ~jobs time_bursts) jobs_sizes
    };
    { id = "serve_burst_warm_store";
      points =
        List.map
          (fun jobs ->
            let store_path = Filename.temp_file "bagcqc-bench-store" ".log" in
            Fun.protect
              ~finally:(fun () ->
                try Sys.remove store_path with Sys_error _ -> ())
            @@ fun () ->
            Store.with_store store_path @@ fun () ->
            with_serve_server ~jobs time_bursts)
          jobs_sizes };
    (* serve_burst_cold with the full telemetry surface armed: metrics
       endpoint live on an ephemeral port (its ticker sampling gauges
       and windows 4×/s), an access log writing every request line, and
       a slow-request threshold being evaluated per request.  The delta
       against serve_burst_cold is the per-request cost of serving-grade
       observability; the acceptance bar is "within noise".  Tracing
       stays off, as in every timed suite — span capture is priced by
       the obs overhead suite, not here. *)
    { id = "serve_burst_telemetry";
      points =
        List.map
          (fun jobs ->
            let log = Filename.temp_file "bagcqc-bench-access" ".jsonl" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
            @@ fun () ->
            with_serve_server
              ~configure:(fun c ->
                { c with Bagcqc_serve.Server.metrics_port = Some 0;
                  access_log = Some log; log_sample = 1; slow_ms = Some 50.0 })
              ~jobs time_bursts)
          jobs_sizes } ]

(* ---------------- JSON emission ---------------- *)

(* Engine counters and metric histograms for a fixed representative
   workload (three repeated triangle/vee decides plus two repeated path
   decides, cache on).  Tracing is force-enabled just for this workload so
   the histograms fill; the timed suites above always run with whatever
   state the caller set (disabled unless --trace was given), so the
   regression numbers never pay tracing overhead by accident.  The
   "stats" and "histograms" keys are additive — compare.exe reads only
   "schema" and "suites", so older baselines and newer runs stay
   diffable. *)
let stats_workload () =
  let was_enabled = Obs.enabled () in
  if not was_enabled then Obs.enable ();
  Stats.reset ();
  Solver.clear ();
  let tri = Parser.parse "R(x,y), R(y,z), R(z,x)" in
  let vee = Parser.parse "R(x,y), R(x,z)" in
  with_cone Cones.Full (fun () ->
      for _ = 1 to 3 do
        ignore (Containment.decide tri vee)
      done;
      for _ = 1 to 2 do
        ignore (Containment.decide (path 3) (path 3))
      done);
  (* One valid and one refuted Γn decision under the lazy driver, so the
     cone.lazy.* / cone.orbit.* counters in the "stats" block are
     nonzero on every emitted run. *)
  with_cone Cones.Lazy (fun () ->
      ignore (Cones.valid_max_cert Cones.Gamma ~n:4 [ shannon_target 4 ]);
      ignore (Cones.valid Cones.Gamma ~n:4 ingleton));
  let engine = Stats.snapshot () in
  (* The engine counters above are frozen; the serve burst runs after
     that snapshot (so it cannot shift them) but inside the recording
     window, filling the serve.queue_us/solve_us histograms for the
     report block. *)
  serve_metrics_burst ();
  let snap = (engine, Obs.Metrics.snapshot ()) in
  if not was_enabled then Obs.disable ();
  snap

let emit_stats buf (s : Stats.snapshot) =
  let pf fmt = Printf.bprintf buf fmt in
  pf
    ",\n  \"stats\": { \"lp_solves\": %d, \"lp_pivots\": %d, \
     \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f, \
     \"elemental_hits\": %d, \"elemental_misses\": %d, \
     \"hom_enumerations\": %d, \"hybrid_float_solves\": %d, \
     \"hybrid_repairs\": %d, \"hybrid_repair_failures\": %d, \
     \"hybrid_fallbacks\": %d, \"hybrid_fallback_rate\": %.4f, \
     \"lazy_solves\": %d, \"lazy_rounds\": %d, \"lazy_cuts\": %d, \
     \"lazy_fallback_rate\": %.4f, \"orbit_cuts\": %d, \
     \"orbit_canonicalized\": %d }"
    s.Stats.lp_solves s.Stats.lp_pivots s.Stats.cache_hits
    s.Stats.cache_misses
    (Stats.cache_hit_rate s)
    s.Stats.elemental_hits s.Stats.elemental_misses s.Stats.hom_enumerations
    s.Stats.hybrid_float_solves s.Stats.hybrid_repairs
    s.Stats.hybrid_repair_failures s.Stats.hybrid_fallbacks
    (Stats.fallback_rate s)
    s.Stats.lazy_solves s.Stats.lazy_rounds s.Stats.lazy_cuts
    (Stats.lazy_fallback_rate s)
    s.Stats.orbit_cuts s.Stats.orbit_canonicalized

let emit_histograms buf (m : Obs.Metrics.snapshot) =
  let pf fmt = Printf.bprintf buf fmt in
  pf ",\n  \"histograms\": {";
  let first = ref true in
  List.iter
    (fun (name, (h : Obs.Metrics.hist_snapshot)) ->
      if h.Obs.Metrics.count > 0 then begin
        pf
          "%s\n    %S: { \"count\": %d, \"mean\": %.3f, \"p50\": %d, \
           \"p90\": %d, \"p99\": %d, \"max\": %d }"
          (if !first then "" else ",")
          name h.Obs.Metrics.count (Obs.Metrics.mean h)
          (Obs.Metrics.percentile h 0.5)
          (Obs.Metrics.percentile h 0.9)
          (Obs.Metrics.percentile h 0.99)
          h.Obs.Metrics.max_value;
        first := false
      end)
    m.Obs.Metrics.histograms;
  pf "%s }" (if !first then "" else "\n ")

let emit buf suites stats =
  let pf fmt = Printf.bprintf buf fmt in
  pf
    "{\n  \"schema\": \"bagcqc-bench/1\",\n  \"jobs\": %d,\n  \
     \"lp_engine\": %S,\n  \"cone_engine\": %S,\n  \"suites\": ["
    (Bagcqc_par.Pool.jobs ())
    (Simplex.mode_name !Simplex.default_mode)
    (Cones.engine_name !Cones.default_engine);
  List.iteri
    (fun i (name, experiments) ->
      pf "%s\n    { \"suite\": %S,\n      \"experiments\": ["
        (if i = 0 then "" else ",")
        name;
      List.iteri
        (fun j e ->
          pf "%s\n        { \"id\": %S,\n          \"sizes\": ["
            (if j = 0 then "" else ",")
            e.id;
          List.iteri
            (fun k p ->
              pf
                "%s\n            { \"size\": %d, \"reps\": %d, \"median_s\": \
                 %.9g, \"min_s\": %.9g }"
                (if k = 0 then "" else ",")
                p.size p.reps p.median_s p.min_s)
            e.points;
          pf " ] }")
        experiments;
      pf " ] }")
    suites;
  pf " ]";
  Option.iter
    (fun (s, m) ->
      emit_stats buf s;
      emit_histograms buf m)
    stats;
  pf "\n}\n"

type only = All | Lp | Hom | Par

let run ~path ~only ~smoke =
  (* The par suite rides with the LP selection on purpose: BENCH_lp.json
     is the solver-side baseline file, and the jobs-scaling points live
     there so the regression gate exercises the pool on every run. *)
  let suites =
    (match only with
     | All | Lp -> [ ("lp", lp_suite ~smoke) ]
     | Hom | Par -> [])
    @ (match only with
       | All | Hom -> [ ("hom", hom_suite ~smoke) ]
       | Lp | Par -> [])
    @ (match only with
       | All | Lp | Par -> [ ("par", par_suite ~smoke) ]
       | Hom -> [])
    @ (match only with
       (* The serve suite rides with the LP selection like par: the
          daemon's throughput baselines live in BENCH_lp.json so the
          regression gate drives the full socket path on every run. *)
       | All | Lp -> [ ("serve", serve_suite ~smoke) ]
       | Hom | Par -> [])
  in
  List.iter
    (fun (name, experiments) ->
      List.iter
        (fun e ->
          List.iter
            (fun p ->
              Format.printf "%s/%s size=%d median=%.6fs (%d reps)@." name e.id
                p.size p.median_s p.reps)
            e.points)
        experiments)
    suites;
  let stats =
    match only with
    | All | Lp -> Some (stats_workload ())
    | Hom | Par -> None
  in
  (match stats with
   | Some (s, _) ->
     Format.printf "engine cache hit rate on the stats workload: %.0f%% (%d/%d)@."
       (100. *. Stats.cache_hit_rate s)
       s.Stats.cache_hits
       (s.Stats.cache_hits + s.Stats.cache_misses)
   | None -> ());
  let buf = Buffer.create 2048 in
  emit buf suites stats;
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path
