(* Benchmark & experiment harness.

   The paper (PODS 2020) is a theory paper whose "evaluation" consists of
   worked examples, one figure, one table, and complexity claims.  This
   harness regenerates all of them (experiment ids E1-E12, see DESIGN.md
   and EXPERIMENTS.md):

     E1  Example 4.3/3.8      triangle ⊑ vee, and its Max-II
     E2  Example 3.5          normal witness exists, no product witness
     E3  Example 5.2          reduction IIP → BagCQC-A
     E4  Example B.4          parity is entropic but not normal
     E5  Figure 1 / Ex C.4    Theorem C.3 normalization of parity
     E6  Table 1              database ↔ information-theory dictionary
     E7  Example E.2          locality failure for non-normal entropies
     E8  Theorem 3.1          decision-procedure scaling (exponential in n)
     E9  Lemma 5.3/5.4        reduction output sizes (polynomial)
     E10 Lemma A.1            Boolean reduction preserves containment
     E11 Shannon-oracle       Γn LP scaling
     E12 Theorem 3.4          witness search scaling
     E13 Section 6 / Lee      FD/MVD/lossless-join entropy characterizations
     E14 Lemma 4.8            group-characterizable entropies (Chan-Yeung)
     E15 Section 2.2          bag-bag semantics and its reduction
     E16 Theorem 3.4          product vs normal witnesses
     A1/A2                    ablations (side dedup; certificate vs primal LP)

   Part 1 prints the experiment tables (deterministic reproductions);
   part 2 runs Bechamel timings for the scaling experiments. *)

open Bagcqc_num
open Bagcqc_entropy
open Bagcqc_relation
open Bagcqc_cq
open Bagcqc_core

let vs = Varset.of_list
let q = Rat.of_int

let section title =
  Format.printf "@.==== %s ====@." title

(* ------------------------------------------------------------------ *)
(* E1: Example 4.3 — triangle ⊑ vee                                    *)
(* ------------------------------------------------------------------ *)

let triangle = Parser.parse "R(x,y), R(y,z), R(z,x)"
let vee = Parser.parse "R(y1,y2), R(y1,y3)"

let e1 () =
  section "E1: Example 4.3 — #triangles <= #vees";
  let verdict =
    match Containment.decide triangle vee with
    | Containment.Contained _ -> "CONTAINED"
    | Containment.Not_contained _ -> "NOT CONTAINED"
    | Containment.Unknown _ -> "UNKNOWN"
  in
  Format.printf "paper: Q1 ⊑ Q2 holds | measured: %s@." verdict;
  Format.printf "homomorphisms Q2→Q1: paper 3 | measured %d@."
    (Hom.count_between vee triangle);
  (* Cross-check on random graphs. *)
  let ok = ref true in
  for seed = 0 to 19 do
    let st = Random.State.make [| seed |] in
    let db =
      List.fold_left
        (fun db _ ->
          Database.add_row "R"
            [| Value.Int (Random.State.int st 5); Value.Int (Random.State.int st 5) |]
            db)
        Database.empty
        (List.init 12 Fun.id)
    in
    if Hom.count triangle db > Hom.count vee db then ok := false
  done;
  Format.printf "spot-check on 20 random digraphs: %s@."
    (if !ok then "all satisfy #triangles <= #vees" else "VIOLATION (bug!)")

(* ------------------------------------------------------------------ *)
(* E2: Example 3.5 — normal witness, no product witness                *)
(* ------------------------------------------------------------------ *)

let ex35_q1 =
  Parser.parse
    "A(x1,x2), B(x1,x2), C(x1,x2), A(x1',x2'), B(x1',x2'), C(x1',x2')"

let ex35_q2 = Parser.parse "A(y1,y2), B(y1,y3), C(y4,y2)"

let e2 () =
  section "E2: Example 3.5 — normal witness P = {(u,u,v,v)}";
  Format.printf "  n |  |P| = n^2 | hom(Q2,Pi_Q1(P)) (paper: n) | witness?@.";
  List.iter
    (fun n ->
      let p =
        Relation.of_int_rows ~arity:4
          (List.concat_map
             (fun u -> List.map (fun v -> [ u; u; v; v ]) (List.init n Fun.id))
             (List.init n Fun.id))
      in
      match Containment.verify_witness ~annotate:false ex35_q1 ex35_q2 p with
      | Some (card, hom2) ->
        Format.printf "%3d | %9d | %10d | yes@." n card hom2
      | None -> Format.printf "%3d | %9d | %10s | NO@." n (n * n) "-")
    [ 2; 3; 4; 6; 8 ];
  let ineq = Containment.eq8 ex35_q1 ex35_q2 in
  Format.printf "no product witness (valid over Mn): paper yes | measured %b@."
    (Result.is_ok (Maxii.valid_over Cones.Modular ineq));
  Format.printf "normal witness exists (invalid over Nn): paper yes | measured %b@."
    (Result.is_error (Maxii.valid_over Cones.Normal ineq))

(* ------------------------------------------------------------------ *)
(* E3: Example 5.2 — the reduction                                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3: Example 5.2 — reduction IIP -> BagCQC-A";
  (* Verbatim queries of the example. *)
  let q1 =
    Parser.parse
      "S1(x1a), S2(x2a), S3(x2a), S4(x3a), R1(x1a,x2a,x3a), \
       R2(x1a,x2a,x1a,x2a,x3a), R3(x2a,x3a,x1a,x2a,x3a), \
       S1(x1b), S2(x2b), S3(x2b), S4(x3b), R1(x1b,x2b,x3b), \
       R2(x1b,x2b,x1b,x2b,x3b), R3(x2b,x3b,x1b,x2b,x3b), \
       S1(x1c), S2(x2c), S3(x2c), S4(x3c), R1(x1c,x2c,x3c), \
       R2(x1c,x2c,x1c,x2c,x3c), R3(x2c,x3c,x1c,x2c,x3c)"
  in
  let q2 =
    Parser.parse
      "S1(u1), S2(u2), S3(u3), S4(u4), R1(y01,y02,y03), \
       R2(y01,y02,y11,y12,y13), R3(y12,y13,y21,y22,y23)"
  in
  Format.printf "Q1 variables: paper 9 | measured %d@." (Query.nvars q1);
  Format.printf "Q2 variables: paper 13 | measured %d@." (Query.nvars q2);
  Format.printf "Q2 acyclic: paper yes | measured %b@." (Treedec.is_acyclic q2);
  Format.printf "homs Q2->Q1: paper 3^5 = 243 | measured %d@."
    (Hom.count_between q2 q1);
  (* General construction on the same inequality. *)
  let e =
    Linexpr.sum
      [ Linexpr.term (vs [ 0 ]); Linexpr.term ~coeff:(q 2) (vs [ 1 ]);
        Linexpr.term (vs [ 2 ]);
        Linexpr.term ~coeff:(q (-1)) (vs [ 0; 1 ]);
        Linexpr.term ~coeff:(q (-1)) (vs [ 1; 2 ]) ]
  in
  let u = Reduction.uniformize (Maxii.general ~n:3 [ e ]) in
  let c = Reduction.to_queries u in
  Format.printf
    "general construction: n=%d p=%d q=%d | Q1 vars %d, Q2 vars %d, Q2 acyclic %b, homs %d (q^n*qk = %d)@."
    u.Reduction.n u.Reduction.p u.Reduction.q
    (Query.nvars c.Reduction.q1) (Query.nvars c.Reduction.q2)
    (Treedec.is_acyclic c.Reduction.q2)
    (Hom.count_between c.Reduction.q2 c.Reduction.q1)
    (int_of_float (float_of_int u.Reduction.q ** float_of_int u.Reduction.n)
     * u.Reduction.q * 1)

(* ------------------------------------------------------------------ *)
(* E4: Example B.4 — the parity function                               *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4: Example B.4 — parity is entropic, not normal";
  let h = Polymatroid.parity in
  Format.printf "h = %a@." (Polymatroid.pp ()) h;
  Format.printf "is polymatroid: paper yes | measured %b@."
    (Polymatroid.is_polymatroid h);
  Format.printf "is normal: paper NO | measured %b@." (Polymatroid.is_normal h);
  Format.printf "Mobius inverse g: paper (+1,-1,-1,-1,0,0,0,+2) | measured (";
  let full = Varset.full 3 in
  let order =
    [ Varset.empty; vs [ 0 ]; vs [ 1 ]; vs [ 2 ]; vs [ 0; 1 ]; vs [ 0; 2 ];
      vs [ 1; 2 ]; full ]
  in
  List.iteri
    (fun i s ->
      if i > 0 then Format.printf ",";
      Format.printf "%a" Rat.pp (Polymatroid.mobius h s))
    order;
  Format.printf ")@.";
  (* The parity relation realizes h exactly (2 bits at the top). *)
  let p =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
  in
  Format.printf "realizing relation totally uniform: %b; H(XYZ) = %.1f bits (paper 2)@."
    (Relation.is_totally_uniform p)
    (Relation.entropy_float p full)

(* ------------------------------------------------------------------ *)
(* E5: Figure 1 — Theorem C.3 normalization of parity                  *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5: Figure 1 / Example C.4 — normalize(parity)";
  let h = Polymatroid.parity in
  let h' = Normalize.normalize h in
  Format.printf " set  | h | h' (paper bottom-left) | g'@.";
  let full = Varset.full 3 in
  Varset.iter_subsets full (fun s ->
      if not (Varset.is_empty s) then
        Format.printf " %-12s | %a | %a | %a@."
          (Format.asprintf "%a" (Varset.pp ()) s)
          Rat.pp (Polymatroid.value h s) Rat.pp (Polymatroid.value h' s)
          Rat.pp (Polymatroid.mobius h' s));
  Format.printf
    "h' normal: %b; h' <= h: %b; h'(V) = h(V): %b; singletons preserved: %b@."
    (Polymatroid.is_normal h')
    (Polymatroid.dominates h h')
    (Rat.equal (Polymatroid.value h full) (Polymatroid.value h' full))
    (List.for_all
       (fun i ->
         Rat.equal
           (Polymatroid.value h (Varset.singleton i))
           (Polymatroid.value h' (Varset.singleton i)))
       [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* E6: Table 1 — the DB ↔ IT dictionary, machine-checked               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6: Table 1 — database/information-theory translation";
  let n = 3 in
  let full = Varset.full n in
  let logi k = Logint.log_int k in
  let check name b = Format.printf "%-58s %s@." name (if b then "OK" else "FAIL") in
  (* Product relation ↔ modular function. *)
  let p = Relation.product_of_sizes [ 2; 4; 8 ] in
  let hm = Polymatroid.modular_of_weights [| q 1; q 2; q 3 |] in
  let matches p h =
    let ok = ref true in
    Varset.iter_subsets full (fun x ->
        match Relation.entropy_exact p x with
        | None -> ok := false
        | Some e ->
          if not (Logint.equal e (Logint.scale (Polymatroid.value h x) (logi 2)))
          then ok := false);
    !ok
  in
  check "product relation has modular entropy" (matches p hm);
  (* Step relation ↔ step function. *)
  let w = vs [ 0; 2 ] in
  check "step relation P_W has entropy h_W"
    (matches (Relation.step_relation ~n w) (Polymatroid.step n w));
  (* Domain product ↔ sum. *)
  let p1 = Relation.step_relation ~n (vs [ 0 ]) in
  let p2 = Relation.step_relation ~n (vs [ 1 ]) in
  check "domain product adds entropies"
    (matches (Relation.domain_product p1 p2)
       (Polymatroid.add (Polymatroid.step n (vs [ 0 ])) (Polymatroid.step n (vs [ 1 ]))));
  (* Normal relation ↔ normal function. *)
  let coeffs = [ (vs [ 0; 1 ], 2); (vs [ 2 ], 1) ] in
  check "normal relation has normal entropy"
    (matches
       (Relation.of_normal_steps ~n coeffs)
       (Polymatroid.normal_of_steps n
          (List.map (fun (w, c) -> (w, q c)) coeffs)));
  (* Mn ⊊ Nn ⊊ Γn strictness witnesses. *)
  check "step at |V-W|>=2 is normal but not modular"
    (Polymatroid.is_normal (Polymatroid.step n Varset.empty)
     && not (Polymatroid.is_modular (Polymatroid.step n Varset.empty)));
  check "parity is a polymatroid but not normal"
    (Polymatroid.is_polymatroid Polymatroid.parity
     && not (Polymatroid.is_normal Polymatroid.parity))

(* ------------------------------------------------------------------ *)
(* E7: Example E.2 — locality fails for non-normal entropies           *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7: Example E.2 — parity relation breaks locality";
  (* Q1 = Q2 = R(X1,X2), S(X2,X3), T(X3,X1); P = parity. *)
  let q1 = Parser.parse "R(x1,x2), S(x2,x3), T(x3,x1)" in
  let p =
    Relation.of_int_rows ~arity:3
      [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
  in
  let db = Database.of_vrelation q1 p in
  (* Each projected relation is all of {0,1}²: 4 rows. *)
  List.iter
    (fun (name, r) ->
      Format.printf "%s has %d rows (paper: 4)@." name (Relation.cardinal r))
    (Database.relations db);
  (* hom(Q2, D) picks up the extra triangle (1,1,1): 8 homs > |P| = 4. *)
  let homs = Hom.count q1 db in
  Format.printf "hom(Q2,D) = %d > |P| = %d: paper notes the extra tuple (1,1,1)@."
    homs (Relation.cardinal p);
  let extra = [| Value.Int 1; Value.Int 1; Value.Int 1 |] in
  Format.printf "(1,1,1) in hom(Q2,D) but in no row of P: %b@."
    (List.exists (fun h -> h = extra) (Hom.enumerate q1 db)
     && not (Relation.mem extra p))

(* ------------------------------------------------------------------ *)
(* E10: Lemma A.1 cross-validation                                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10: Lemma A.1 — Boolean reduction, randomized cross-check";
  let q1 = Parser.parse "Q(x) :- R(x,y)" in
  let q2 = Parser.parse "Q(x) :- R(x,y), R(x,z)" in
  let b1, b2 = Reductions.booleanize q1 q2 in
  let agree = ref 0 and total = 20 in
  for seed = 1 to total do
    let st = Random.State.make [| seed |] in
    let db =
      List.fold_left
        (fun db _ ->
          Database.add_row "R"
            [| Value.Int (Random.State.int st 3); Value.Int (Random.State.int st 3) |]
            db)
        Database.empty
        (List.init (2 + Random.State.int st 6) Fun.id)
    in
    (* Extend db with the head relations over the active domain. *)
    let dom = List.init 3 (fun i -> Value.Int i) in
    let db' =
      List.fold_left
        (fun db v -> Database.add_row "__head_0" [| v |] db)
        db dom
    in
    let lhs = Hom.contained_on q1 q2 db in
    let rhs = Hom.count b1 db' <= Hom.count b2 db' in
    if lhs = rhs then incr agree
  done;
  Format.printf "per-database agreement on %d random instances: %d/%d@."
    total !agree total;
  Format.printf "decide_with_heads(Q1,Q2): %s (expected CONTAINED)@."
    (match Containment.decide_with_heads q1 q2 with
     | Containment.Contained _ -> "CONTAINED"
     | Containment.Not_contained _ -> "NOT CONTAINED"
     | Containment.Unknown _ -> "UNKNOWN")

(* ------------------------------------------------------------------ *)
(* E8/E9/E11/E12 tables: scaling measurements                          *)
(* ------------------------------------------------------------------ *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let path k =
  (* R(x1,x2), R(x2,x3), ..., k atoms, k+1 variables. *)
  Query.make ~nvars:(k + 1)
    (List.init k (fun i -> Query.atom "R" [ i; i + 1 ]))

let e8 () =
  section "E8: Theorem 3.1 scaling — decide(path_k ⊑ path_k), n = k+1 vars";
  Format.printf "  n | verdict   | seconds (expect exponential growth)@.";
  List.iter
    (fun n ->
      let p = path (n - 1) in
      let v, dt = time_it (fun () -> Containment.decide p p) in
      Format.printf "%3d | %-9s | %.3f@." n
        (match v with
         | Containment.Contained _ -> "contained"
         | Containment.Not_contained _ -> "not-cont"
         | Containment.Unknown _ -> "unknown")
        dt)
    [ 3; 4; 5; 6 ]

let e9 () =
  section "E9: reduction output size vs input size (Lemma 5.3: polynomial)";
  Format.printf " #terms | Q1 vars | Q2 vars | Q1 atoms | Q2 atoms | seconds@.";
  List.iter
    (fun t ->
      (* Alternate non-overlapping masks so terms accumulate instead of
         cancelling: positives on singletons, negatives on pairs. *)
      let side =
        Linexpr.sum
          (List.init t (fun i ->
               if i mod 2 = 0 then
                 Linexpr.term ~coeff:(q 1) (Varset.singleton (i / 2 mod 3))
               else
                 Linexpr.term ~coeff:(q (-1))
                   (Varset.union
                      (Varset.singleton (i / 2 mod 3))
                      (Varset.singleton ((i / 2 + 1) mod 3)))))
      in
      let m = Maxii.general ~n:3 [ side ] in
      let c, dt = time_it (fun () -> Reduction.reduce m) in
      Format.printf "%7d | %7d | %7d | %8d | %8d | %.4f@." t
        (Query.nvars c.Reduction.q1) (Query.nvars c.Reduction.q2)
        (List.length (Query.atoms c.Reduction.q1))
        (List.length (Query.atoms c.Reduction.q2))
        dt)
    [ 2; 4; 6; 8; 10 ]

let e11 () =
  section "E11: Shannon-oracle scaling — monotonicity h(V) >= h(X1) over Γn";
  Format.printf "  n | LP vars | valid | seconds@.";
  List.iter
    (fun n ->
      let e =
        Linexpr.sub (Linexpr.term (Varset.full n)) (Linexpr.term (vs [ 0 ]))
      in
      let v, dt = time_it (fun () -> Cones.valid_shannon ~n e) in
      Format.printf "%3d | %7d | %5b | %.3f@." n ((1 lsl n) - 1) v dt)
    [ 2; 3; 4; 5; 6 ]

let e12 () =
  section "E12: witness-search scaling (Example 3.5's refuter, k copies)";
  let h =
    Polymatroid.normal_of_steps 4
      [ (vs [ 0; 1 ], Rat.one); (vs [ 2; 3 ], Rat.one) ]
  in
  Format.printf " max_factors | found | |P| | seconds@.";
  List.iter
    (fun mf ->
      let r, dt =
        time_it (fun () ->
            Containment.witness_from_normal ~max_factors:mf ex35_q1 ex35_q2 h)
      in
      match r with
      | Some w -> Format.printf "%12d | yes   | %3d | %.4f@." mf w.Containment.card_p dt
      | None -> Format.printf "%12d | no    |   - | %.4f@." mf dt)
    [ 2; 4; 8; 12 ]

(* ------------------------------------------------------------------ *)
(* E13: Section 6 — Lee's dependency characterizations                 *)
(* ------------------------------------------------------------------ *)

let parity_rel =
  Relation.of_int_rows ~arity:3
    [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]

let e13 () =
  section "E13: Lee [22] — FD/MVD/lossless-join via entropy, on parity";
  let b = string_of_bool in
  let agree rel_def ent_def = if rel_def = ent_def then "agree" else "DISAGREE (bug!)" in
  let fd_r = Dependencies.fd_holds parity_rel ~x:(vs [ 0; 1 ]) ~y:(vs [ 2 ]) in
  let fd_e = Dependencies.fd_holds_entropy parity_rel ~x:(vs [ 0; 1 ]) ~y:(vs [ 2 ]) in
  Format.printf "FD XY->Z:   relational %-5s | h(Z|XY)=0 %-5s | %s@."
    (b fd_r) (b fd_e) (agree fd_r fd_e);
  let fd2_r = Dependencies.fd_holds parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 2 ]) in
  let fd2_e = Dependencies.fd_holds_entropy parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 2 ]) in
  Format.printf "FD X->Z:    relational %-5s | h(Z|X)=0  %-5s | %s@."
    (b fd2_r) (b fd2_e) (agree fd2_r fd2_e);
  let mvd_r = Dependencies.mvd_holds parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 1 ]) in
  let mvd_e = Dependencies.mvd_holds_entropy parity_rel ~x:(vs [ 0 ]) ~y:(vs [ 1 ]) in
  Format.printf "MVD X->>Y:  relational %-5s | I=0       %-5s | %s@."
    (b mvd_r) (b mvd_e) (agree mvd_r mvd_e);
  let t = Treedec.make ~bags:[| vs [ 0; 1 ]; vs [ 1; 2 ] |] ~edges:[ (0, 1) ] in
  let lj_r = Dependencies.lossless_join parity_rel t in
  let lj_e = Dependencies.lossless_join_entropy parity_rel t in
  Format.printf "lossless {01}-{12}: relational %-5s | E_T(h)=h(V) %-5s | %s@."
    (b lj_r) (b lj_e) (agree lj_r lj_e)

(* ------------------------------------------------------------------ *)
(* E14: Chan–Yeung group characterization (Lemma 4.8)                  *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14: group-characterizable entropies (Lemma 4.8)";
  let g, subs = Group.klein_parity in
  Format.printf "Klein four-group, 3 subgroups of order 2:@.";
  let p = Group.coset_relation g subs in
  Format.printf "coset relation rows: %d (paper: the parity relation, 4)@."
    (Relation.cardinal p);
  Format.printf "totally uniform: %b (Lemma 4.8 requires it)@."
    (Relation.is_totally_uniform p);
  let matches = ref true in
  Varset.iter_subsets (Varset.full 3) (fun x ->
      if
        not
          (Logint.equal (Relation.entropy_logint p x) (Group.entropy g subs x))
      then matches := false);
  Format.printf "relation entropies = log(|G|/|∩Gᵢ|) closed form: %b@." !matches;
  Format.printf "h(single)=%.0f h(pair)=%.0f h(triple)=%.0f bits (parity: 1/2/2)@."
    (Logint.to_float (Group.entropy g subs (vs [ 0 ])))
    (Logint.to_float (Group.entropy g subs (vs [ 0; 1 ])))
    (Logint.to_float (Group.entropy g subs (Varset.full 3)))

(* ------------------------------------------------------------------ *)
(* E15: bag-bag semantics reduction (Section 2.2)                      *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15: bag-bag vs bag-set (Section 2.2)";
  let dup = Parser.parse "R(x,y), R(x,y)" in
  let single = Parser.parse "R(x,y)" in
  let verdict v =
    match v with
    | Containment.Contained _ -> "contained"
    | Containment.Not_contained _ -> "not contained"
    | Containment.Unknown _ -> "unknown"
  in
  Format.printf "R(x,y),R(x,y) vs R(x,y) under bag-set (dup atoms collapse): %s@."
    (verdict (Containment.decide (Query.dedup_atoms dup) single));
  Format.printf "R(x,y),R(x,y) vs R(x,y) under bag-bag (paper: differ!): %s@."
    (verdict (Containment.decide_bag_bag dup single));
  Format.printf "R(x,y) vs R(x,y),R(x,y) under bag-bag: %s@."
    (verdict (Containment.decide_bag_bag single dup));
  (* Reduction identity spot check. *)
  let db = Bagdb.of_int_rows [ ("R", [ ([ 0; 1 ], 3); ([ 1; 2 ], 2) ]) ] in
  Format.printf "count_bag(dup) = %d = lifted bag-set count %d@."
    (Bagdb.count_bag dup db)
    (Hom.count (Bagdb.lift_query dup) (Bagdb.to_set_database db))

(* ------------------------------------------------------------------ *)
(* E16: Theorem 3.4 — witness structure                                *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section "E16: Theorem 3.4 — product vs normal witnesses";
  let loopq = Parser.parse "R(u,u)" and edgeq = Parser.parse "R(x,y)" in
  Format.printf "Q2 = R(u,u): class %s@."
    (match Witness.applicable loopq with
     | Some Witness.Product -> "totally disconnected: product witnesses suffice"
     | Some Witness.Normal -> "simple: normal witnesses suffice"
     | None -> "no guarantee");
  (match Witness.product_witness edgeq loopq with
   | Some (_, card, hom2) ->
     Format.printf "R(x,y) vs R(u,u): product witness |P|=%d > hom=%d@." card hom2
   | None -> Format.printf "R(x,y) vs R(u,u): no product witness (unexpected)@.");
  Format.printf "Example 3.5: product witness exists: %b (paper: no)@."
    (Witness.product_witness ex35_q1 ex35_q2 <> None);
  Format.printf "Example 3.5: normal witness exists: %b (paper: yes)@."
    (Witness.normal_witness ex35_q1 ex35_q2 <> None)

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md                   *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablation A1: deduplicating Eq. 8 sides";
  let pairs =
    [ ("triangle/vee", triangle, vee); ("Ex 3.5", ex35_q1, ex35_q2);
      (* Q1 with an automorphism: both homs induce the same side. *)
      ("2cycle/edge", Parser.parse "R(x,y), R(y,x)", Parser.parse "R(u,v)") ]
  in
  Format.printf "%-14s | sides (dedup) | sides (raw) | t dedup | t raw@." "instance";
  List.iter
    (fun (name, q1, q2) ->
      let timed dedup =
        let t0 = Unix.gettimeofday () in
        let m = Containment.eq8 ~dedup q1 q2 in
        let n = List.length (Maxii.sides m) in
        let _ = Maxii.is_valid_over Cones.Gamma m in
        (n, Unix.gettimeofday () -. t0)
      in
      let nd, td = timed true in
      let nr, tr = timed false in
      Format.printf "%-14s | %13d | %11d | %.3fs | %.3fs@." name nd nr td tr)
    pairs;
  section "Ablation A2: Farkas certificate vs primal feasibility (Γ4, Ingleton)";
  let i_pair a b x = Linexpr.mutual (vs [ a ]) (vs [ b ]) (vs x) in
  let ingleton =
    Linexpr.sub
      (Linexpr.sum [ i_pair 0 1 [ 2 ]; i_pair 0 1 [ 3 ]; i_pair 2 3 [] ])
      (i_pair 0 1 [])
  in
  let t0 = Unix.gettimeofday () in
  let quick = Cones.valid_max_quick Cones.Gamma ~n:4 [ ingleton ] in
  let t_quick = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let full = Result.is_ok (Cones.valid Cones.Gamma ~n:4 ingleton) in
  let t_full = Unix.gettimeofday () -. t0 in
  Format.printf "certificate-only: %.4fs | with refuter extraction: %.4fs (verdict %b=%b)@."
    t_quick t_full quick full

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let test_e1 =
    Test.make ~name:"e1_vee_decide" (Staged.stage (fun () ->
        ignore (Containment.decide triangle vee)))
  in
  let test_e2 =
    Test.make ~name:"e2_normal_witness" (Staged.stage (fun () ->
        let h =
          Polymatroid.normal_of_steps 4
            [ (vs [ 0; 1 ], Rat.one); (vs [ 2; 3 ], Rat.one) ]
        in
        ignore (Containment.witness_from_normal ~max_factors:4 ex35_q1 ex35_q2 h)))
  in
  let test_e3 =
    Test.make ~name:"e3_reduce_ex52" (Staged.stage (fun () ->
        let e =
          Linexpr.sum
            [ Linexpr.term (vs [ 0 ]); Linexpr.term ~coeff:(q 2) (vs [ 1 ]);
              Linexpr.term (vs [ 2 ]);
              Linexpr.term ~coeff:(q (-1)) (vs [ 0; 1 ]);
              Linexpr.term ~coeff:(q (-1)) (vs [ 1; 2 ]) ]
        in
        ignore (Reduction.reduce (Maxii.general ~n:3 [ e ]))))
  in
  let test_e5 =
    Test.make ~name:"e5_normalize_parity" (Staged.stage (fun () ->
        ignore (Normalize.normalize Polymatroid.parity)))
  in
  let test_e6 =
    Test.make ~name:"e6_table1_checks" (Staged.stage (fun () ->
        ignore (Relation.is_totally_uniform (Relation.of_normal_steps ~n:3 [ (vs [ 0 ], 2) ]))))
  in
  let test_e7 =
    Test.make ~name:"e7_parity_locality" (Staged.stage (fun () ->
        let q1 = Parser.parse "R(x1,x2), S(x2,x3), T(x3,x1)" in
        let p =
          Relation.of_int_rows ~arity:3
            [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 0 ] ]
        in
        ignore (Hom.count q1 (Database.of_vrelation q1 p))))
  in
  let test_e8 n =
    Test.make ~name:(Printf.sprintf "e8_decide_path_n%d" n)
      (Staged.stage (fun () -> ignore (Containment.decide (path (n - 1)) (path (n - 1)))))
  in
  let test_e10 =
    Test.make ~name:"e10_booleanize" (Staged.stage (fun () ->
        ignore
          (Reductions.booleanize
             (Parser.parse "Q(x) :- R(x,y)")
             (Parser.parse "Q(x) :- R(x,y), R(x,z)"))))
  in
  let test_e11 n =
    Test.make ~name:(Printf.sprintf "e11_shannon_n%d" n)
      (Staged.stage (fun () ->
           let e =
             Linexpr.sub (Linexpr.term (Varset.full n)) (Linexpr.term (vs [ 0 ]))
           in
           ignore (Cones.valid_shannon ~n e)))
  in
  let test_e12 =
    Test.make ~name:"e12_verify_witness" (Staged.stage (fun () ->
        let p =
          Relation.of_int_rows ~arity:4
            (List.concat_map
               (fun u -> List.map (fun v -> [ u; u; v; v ]) [ 0; 1; 2 ])
               [ 0; 1; 2 ])
        in
        ignore (Containment.verify_witness ex35_q1 ex35_q2 p)))
  in
  let test_e9 =
    Test.make ~name:"e9_uniformize" (Staged.stage (fun () ->
        let side =
          Linexpr.sum
            (List.init 8 (fun i ->
                 Linexpr.term
                   ~coeff:(q (if i mod 2 = 0 then 1 else -1))
                   (Varset.singleton (i mod 3))))
        in
        ignore (Reduction.uniformize (Maxii.general ~n:3 [ side ]))))
  in
  let tests =
    [ test_e1; test_e2; test_e3; test_e5; test_e6; test_e7;
      test_e8 4; test_e8 5; test_e8 6;
      test_e9; test_e10;
      test_e11 3; test_e11 4; test_e11 5; test_e11 6;
      test_e12 ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  Format.printf "@.==== Bechamel timings (ns/run, OLS estimate) ====@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-32s %12.0f ns/run@." name est
          | Some _ | None -> Format.printf "%-32s (no estimate)@." name)
        analyzed)
    tests

(* `--json FILE [--only lp|hom|par] [--smoke] [--jobs N] [--trace FILE]`:
   skip the experiment tables and write wall-clock medians for the scaling
   suites to FILE (see Bench_json); `compare.exe` diffs two such files.
   `--jobs N` sizes the domain pool (the par suite overrides it per point;
   everything else runs at this setting, default 1 in this harness for
   reproducible sequential baselines).  `--trace` additionally records the
   whole bench run as a span trace (readable with `bin/main.exe report`) —
   note the timed medians then include tracing overhead, so don't gate
   regressions on a traced run. *)
let json_mode () =
  let usage () =
    prerr_endline
      "usage: main.exe [--json FILE [--only lp|hom|par] [--smoke] [--jobs N] \
       [--lp-engine exact|float_first] [--trace FILE]]";
    exit 2
  in
  let path = ref None
  and only = ref Bench_json.All
  and smoke = ref false
  and jobs = ref None
  and lp_engine = ref None
  and trace = ref None in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest -> path := Some file; parse rest
    | "--only" :: "lp" :: rest -> only := Bench_json.Lp; parse rest
    | "--only" :: "hom" :: rest -> only := Bench_json.Hom; parse rest
    | "--only" :: "par" :: rest -> only := Bench_json.Par; parse rest
    | "--smoke" :: rest -> smoke := true; parse rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 1 -> jobs := Some n; parse rest
       | _ -> prerr_endline "main.exe: bad --jobs"; exit 2)
    | "--lp-engine" :: v :: rest ->
      (match Bagcqc_lp.Simplex.mode_of_string v with
       | Some m -> lp_engine := Some m; parse rest
       | None -> prerr_endline "main.exe: bad --lp-engine"; exit 2)
    | "--trace" :: file :: rest -> trace := Some file; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  Option.iter Bagcqc_par.Pool.set_jobs !jobs;
  (* Sets the process default; the frozen lp-suite experiment ids still
     pin their own mode (see Bench_json), so this governs the stats
     workload and any unpinned solves. *)
  Option.iter (fun m -> Bagcqc_lp.Simplex.default_mode := m) !lp_engine;
  match !path with
  | Some path ->
    let module Obs = Bagcqc_obs in
    (match !trace with
     | Some _ ->
       Obs.enable ();
       Obs.reset ()
     | None -> ());
    Obs.Span.with_span ~name:"bench.json" (fun () ->
        Bench_json.run ~path ~only:!only ~smoke:!smoke);
    (match !trace with Some f -> Obs.Export.write f | None -> ());
    true
  | None ->
    if !only <> Bench_json.All || !smoke || !trace <> None || !jobs <> None
       || !lp_engine <> None
    then usage ()
    else false

let () =
  if json_mode () then exit 0;
  Format.printf "bagcqc experiment harness (see DESIGN.md / EXPERIMENTS.md)@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  ablations ();
  bechamel_suite ();
  Format.printf "@.done.@."
