(* Fleet-scale corpus sweep (ROADMAP item 5).

   Three subcommands over the stratified corpora of Bagcqc_check.Corpus:

     gen    write a seeded corpus file (same seed => byte-identical)
     run    bulk-decide a corpus — in-process over the domain pool, or
            against a live `bagcqc serve` daemon over its socket —
            reporting decisions/sec, p50/p99 latency and cache/store hit
            rates per stratum as one JSONL record
     audit  differential correctness sweep: every instance under the
            engine matrix (cone lazy/full x LP float_first/exact x
            jobs 1/4), every verdict compared against the corpus label
            and across configurations, every certificate re-checked with
            the exact checker; any disagreement prints a reproducer and
            fails the run

   Strata are processed one parallel region at a time, so per-stratum
   counter deltas (cache hits, LP solves) are exact — the pool is
   quiescent at every boundary. *)

open Bagcqc_entropy
open Bagcqc_cq
open Bagcqc_core
open Bagcqc_check
module Obs = Bagcqc_obs
module Json = Obs.Json
module Metrics = Obs.Metrics
module Pool = Bagcqc_par.Pool
open Cmdliner

let num i = Json.Num (float_of_int i)

(* ---------------- corpus IO ---------------- *)

let load_corpus path =
  match Corpus.load path with
  | Ok (header, insts) -> (header, insts)
  | Error msg ->
    prerr_endline ("sweep: " ^ msg);
    exit 2

(* ---------------- deciding one instance ---------------- *)

type decided = {
  verdict : string;
  latency_us : int;
  cert_ok : bool;  (** exact re-check of the attached certificate; true
                       when the verdict carries none *)
}

let decide_payload payload =
  let t0 = Unix.gettimeofday () in
  let verdict, cert_ok =
    match payload with
    | Corpus.Check_pair { q1; q2 } -> begin
      match Containment.decide q1 q2 with
      | Containment.Contained cert -> ("contained", Certificate.check cert)
      | Containment.Not_contained _ -> ("not_contained", true)
      | Containment.Unknown _ -> ("unknown", true)
    end
    | Corpus.Iip_sides { n; sides } -> begin
      let ii = Maxii.general ~n (List.map Corpus.build_side sides) in
      match Maxii.decide ii with
      | Maxii.Valid cert -> ("valid", Certificate.check cert)
      | Maxii.Invalid _ -> ("invalid", true)
      | Maxii.Unknown _ -> ("unknown", true)
    end
  in
  let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  { verdict; latency_us = dt_us; cert_ok }

(* ---------------- per-stratum accounting ---------------- *)

let counter_names =
  [
    "solver.cache.hits"; "solver.cache.misses";
    "solver.store.hits"; "solver.store.misses"; "solver.store.appends";
    "lp.solves"; "lp.pivots"; "lp.hybrid.fallbacks";
    "cone.lazy.solves"; "cone.lazy.cuts";
  ]

let read_counters () =
  List.map (fun n -> (n, Metrics.count (Metrics.counter n))) counter_names

let delta_counters before after =
  List.map2 (fun (n, a) (_, b) -> (n, b - a)) before after

let rate hits misses =
  let tot = hits + misses in
  if tot = 0 then 0.0 else float_of_int hits /. float_of_int tot

let lookup name deltas = try List.assoc name deltas with Not_found -> 0

type stratum_result = {
  s_name : string;
  s_count : int;
  s_wall : float;
  s_hist : Metrics.hist_snapshot;
  s_counters : (string * int) list;
  s_mismatches : (Corpus.instance * string) list;  (** instance, got *)
  s_cert_failures : Corpus.instance list;
}

let stratum_json s =
  let hits = lookup "solver.cache.hits" s.s_counters
  and misses = lookup "solver.cache.misses" s.s_counters in
  let st_hits = lookup "solver.store.hits" s.s_counters
  and st_misses = lookup "solver.store.misses" s.s_counters in
  Json.Obj
    [
      ("stratum", Json.Str s.s_name);
      ("count", num s.s_count);
      ("wall_s", Json.Num s.s_wall);
      ( "dps",
        Json.Num
          (if s.s_wall > 0.0 then float_of_int s.s_count /. s.s_wall else 0.0) );
      ("p50_us", num (Metrics.percentile s.s_hist 0.5));
      ("p99_us", num (Metrics.percentile s.s_hist 0.99));
      ("max_us", num (if s.s_hist.Metrics.count = 0 then 0 else s.s_hist.Metrics.max_value));
      ("mean_us", Json.Num (Metrics.mean s.s_hist));
      ("cache_hit_rate", Json.Num (rate hits misses));
      ("store_hit_rate", Json.Num (rate st_hits st_misses));
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, num v)) s.s_counters));
      ("mismatches", num (List.length s.s_mismatches));
      ("cert_failures", num (List.length s.s_cert_failures));
    ]

let group_by_stratum insts =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun inst ->
      let name = inst.Corpus.stratum in
      if not (Hashtbl.mem tbl name) then begin
        Hashtbl.add tbl name (ref []);
        order := name :: !order
      end;
      let cell = Hashtbl.find tbl name in
      cell := inst :: !cell)
    insts;
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find tbl name))) !order

(* ---------------- in-process sweep ---------------- *)

let sweep_stratum ~observe_hist (name, insts) =
  let arr = Array.of_list insts in
  let before = read_counters () in
  let t0 = Unix.gettimeofday () in
  let results =
    Pool.parallel_map
      (fun inst ->
        let d = decide_payload inst.Corpus.payload in
        observe_hist d.latency_us;
        (inst, d))
      arr
  in
  let wall = Unix.gettimeofday () -. t0 in
  let counters = delta_counters before (read_counters ()) in
  let mismatches =
    Array.to_list results
    |> List.filter_map (fun (inst, d) ->
           if d.verdict <> inst.Corpus.verdict then Some (inst, d.verdict)
           else None)
  in
  let cert_failures =
    Array.to_list results
    |> List.filter_map (fun (inst, d) -> if d.cert_ok then None else Some inst)
  in
  (name, Array.length arr, wall, counters, mismatches, cert_failures)

(* ---------------- serve-backed sweep ---------------- *)

(* Pipelined window over one daemon connection: keep up to [window]
   requests outstanding, match replies by their echoed id, measure
   per-request latency send-to-reply.  Check corpora only. *)
let serve_stratum client ~window ~observe_hist (name, insts) =
  let module P = Bagcqc_serve.Protocol in
  let arr = Array.of_list insts in
  let total = Array.length arr in
  let sent = Hashtbl.create (2 * window) in
  let results = Array.make total None in
  let next = ref 0 and done_ = ref 0 in
  let before = read_counters () in
  let t0 = Unix.gettimeofday () in
  let send_one () =
    let i = !next in
    incr next;
    let inst = arr.(i) in
    match inst.Corpus.payload with
    | Corpus.Iip_sides _ -> failwith "serve mode supports check corpora only"
    | Corpus.Check_pair { q1; q2 } ->
      let line =
        Json.to_string
          (Obj
             [
               ("id", num i);
               ("op", Json.Str "check");
               ("q1", Json.Str (Query.to_string q1));
               ("q2", Json.Str (Query.to_string q2));
             ])
      in
      Hashtbl.replace sent i (Unix.gettimeofday ());
      Bagcqc_serve.Client.send_line client line
  in
  let recv_one () =
    match Bagcqc_serve.Client.recv_line client with
    | None -> failwith "daemon closed the connection mid-sweep"
    | Some line ->
      let j = Json.parse line in
      let id = Json.as_int (Json.member "id" j) in
      let t_sent =
        match Hashtbl.find_opt sent id with
        | Some t -> t
        | None -> failwith (Printf.sprintf "reply for unknown id %d" id)
      in
      Hashtbl.remove sent id;
      let lat_us = int_of_float ((Unix.gettimeofday () -. t_sent) *. 1e6) in
      observe_hist lat_us;
      let verdict =
        match Json.find_opt "verdict" j with
        | Some v -> Json.as_str v
        | None -> (
          match Json.find_opt "error" j with
          | Some e -> "error:" ^ Json.as_str (Json.member "kind" e)
          | None -> "error:malformed_reply")
      in
      results.(id) <- Some verdict;
      incr done_
  in
  while !done_ < total do
    while !next < total && Hashtbl.length sent < window do
      send_one ()
    done;
    recv_one ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let counters = delta_counters before (read_counters ()) in
  let mismatches =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some v when v <> arr.(i).Corpus.verdict -> Some (arr.(i), v)
           | Some _ -> None
           | None -> Some (arr.(i), "error:no_reply"))
         results)
    |> List.filter_map Fun.id
  in
  (* certificates stay daemon-side in serve mode *)
  (name, total, wall, counters, mismatches, [])

(* ---------------- one full run ---------------- *)

let print_mismatch ~config_name (inst, got) =
  Printf.eprintf "sweep: VERDICT MISMATCH [%s] expected %s, got %s:\n  %s\n%!"
    config_name inst.Corpus.verdict got
    (Corpus.instance_line inst)

let print_cert_failure ~config_name inst =
  Printf.eprintf "sweep: CERTIFICATE CHECK FAILED [%s]:\n  %s\n%!" config_name
    (Corpus.instance_line inst)

type run_summary = {
  r_total : int;
  r_wall : float;
  r_mismatches : int;
  r_cert_failures : int;
  r_json : Json.t;
}

(* Runs the whole corpus stratum-by-stratum under the ambient engine
   configuration and returns the JSONL record.  [transport] is either
   [`Inproc] or [`Serve client]. *)
let run_corpus ~label ~corpus_path ~kind ~config_name ~config_fields ~transport
    insts =
  let groups = group_by_stratum insts in
  (* pre-create the per-stratum histograms outside any parallel region:
     the metrics registry is keyed by name and find-or-create is not a
     hot-path operation *)
  let hists =
    List.map
      (fun (name, _) -> (name, Metrics.histogram ("sweep.latency_us:" ^ name)))
      groups
  in
  let stratum_results =
    List.map
      (fun (name, insts) ->
        let h = List.assoc name hists in
        let observe_hist v = Metrics.observe h v in
        let name, count, wall, counters, mismatches, cert_failures =
          match transport with
          | `Inproc -> sweep_stratum ~observe_hist (name, insts)
          | `Serve (client, window) ->
            serve_stratum client ~window ~observe_hist (name, insts)
        in
        let snap = Metrics.snapshot () in
        let hist =
          try List.assoc ("sweep.latency_us:" ^ name) snap.Metrics.histograms
          with Not_found -> Metrics.empty_hist
        in
        { s_name = name;
          s_count = count;
          s_wall = wall;
          s_hist = hist;
          s_counters = counters;
          s_mismatches = mismatches;
          s_cert_failures = cert_failures })
      groups
  in
  let total = List.fold_left (fun a s -> a + s.s_count) 0 stratum_results in
  let wall = List.fold_left (fun a s -> a +. s.s_wall) 0.0 stratum_results in
  let mismatches = List.concat_map (fun s -> s.s_mismatches) stratum_results in
  let cert_failures =
    List.concat_map (fun s -> s.s_cert_failures) stratum_results
  in
  List.iter (print_mismatch ~config_name) mismatches;
  List.iter (print_cert_failure ~config_name) cert_failures;
  let overall_counters =
    List.fold_left
      (fun acc s ->
        List.map2 (fun (n, a) (_, b) -> (n, a + b)) acc s.s_counters)
      (List.map (fun n -> (n, 0)) counter_names)
      stratum_results
  in
  let hits = lookup "solver.cache.hits" overall_counters
  and misses = lookup "solver.cache.misses" overall_counters in
  let record =
    Json.Obj
      [
        ("type", Json.Str "sweep");
        ("label", Json.Str label);
        ("corpus", Json.Str corpus_path);
        ("kind", Json.Str (Corpus.kind_name kind));
        ("config", Json.Obj config_fields);
        ("total", num total);
        ("wall_s", Json.Num wall);
        ( "dps",
          Json.Num (if wall > 0.0 then float_of_int total /. wall else 0.0) );
        ("cache_hit_rate", Json.Num (rate hits misses));
        ("mismatches", num (List.length mismatches));
        ("cert_failures", num (List.length cert_failures));
        ( "counters",
          Json.Obj (List.map (fun (n, v) -> (n, num v)) overall_counters) );
        ("strata", Json.Arr (List.map stratum_json stratum_results));
      ]
  in
  { r_total = total;
    r_wall = wall;
    r_mismatches = List.length mismatches;
    r_cert_failures = List.length cert_failures;
    r_json = record }

let emit_record out append record =
  let line = Json.to_string record in
  match out with
  | None -> print_endline line
  | Some path ->
    let flags =
      if append then [ Open_wronly; Open_creat; Open_append; Open_binary ]
      else [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    in
    let oc = open_out_gen flags 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc line;
        output_char oc '\n')

(* ---------------- configuration plumbing ---------------- *)

let cone_name () =
  match !Cones.default_engine with Cones.Full -> "full" | Cones.Lazy -> "lazy"

let lp_name () =
  match !Bagcqc_lp.Simplex.default_mode with
  | Bagcqc_lp.Simplex.Exact -> "exact"
  | Bagcqc_lp.Simplex.Float_first -> "float_first"

let apply_config ~cone ~lp ~jobs =
  Cones.default_engine := cone;
  Bagcqc_lp.Simplex.default_mode := lp;
  Pool.set_jobs jobs;
  (* a fresh cache per configuration: engines must not serve each other's
     memoized answers during a differential audit; fresh metrics so the
     latency histograms (keyed by stratum name) don't blend configs *)
  Bagcqc_engine.Solver.clear ();
  Metrics.reset ()

let config_fields ~transport ~jobs =
  [
    ("cone", Json.Str (cone_name ()));
    ("lp", Json.Str (lp_name ()));
    ("jobs", num jobs);
    ("transport", Json.Str transport);
  ]

(* ---------------- gen subcommand ---------------- *)

let gen_cmd =
  let run kind seed total out =
    match Corpus.kind_of_name kind with
    | None ->
      prerr_endline ("sweep gen: unknown kind " ^ kind);
      2
    | Some k -> (
      match Corpus.generate k ~seed ~total with
      | exception Failure msg ->
        prerr_endline ("sweep gen: " ^ msg);
        1
      | insts ->
        let emit oc = Corpus.write oc k ~seed insts in
        (match out with
        | None -> emit stdout
        | Some path ->
          let oc = open_out_bin path in
          Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> emit oc));
        Printf.eprintf "sweep gen: wrote %d %s instances (seed %d)%s\n%!"
          (List.length insts) kind seed
          (match out with None -> "" | Some p -> " to " ^ p);
        0)
  in
  let kind_arg =
    Arg.(value & opt string "check" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Corpus kind: $(b,check) (containment pairs) or $(b,iip) \
                 (Max-II inequalities).")
  and seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Generator seed; the corpus is a pure function of \
                 (kind, seed, total).")
  and total_arg =
    Arg.(value & opt int 10_000 & info [ "total" ] ~docv:"N"
           ~doc:"Number of instances, spread over the strata \
                 proportionally to their weights.")
  and out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH"
           ~doc:"Write the corpus here (default stdout).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a seeded stratified corpus")
    Term.(const run $ kind_arg $ seed_arg $ total_arg $ out_arg)

(* ---------------- shared run/audit args ---------------- *)

let corpus_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CORPUS"
         ~doc:"Corpus file produced by $(b,sweep gen).")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH"
         ~doc:"Write JSONL records here (default stdout).")

let append_arg =
  Arg.(value & flag & info [ "append" ]
         ~doc:"Append to the output file instead of truncating it.")

let label_arg =
  Arg.(value & opt string "sweep" & info [ "label" ] ~docv:"STR"
         ~doc:"Free-form label copied into every record.")

let limit_arg =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"Sweep only the first N instances of the corpus.")

let take limit insts =
  match limit with
  | None -> insts
  | Some n -> List.filteri (fun i _ -> i < n) insts

(* ---------------- run subcommand ---------------- *)

let run_cmd =
  let run corpus_path jobs cone lp label out append limit store socket port host
      window =
    let cone =
      match Cones.engine_of_string cone with
      | Some c -> c
      | None ->
        prerr_endline ("sweep run: unknown cone engine " ^ cone);
        exit 2
    in
    let lp =
      match Bagcqc_lp.Simplex.mode_of_string lp with
      | Some m -> m
      | None ->
        prerr_endline ("sweep run: unknown lp engine " ^ lp);
        exit 2
    in
    let header, insts = load_corpus corpus_path in
    let insts = take limit insts in
    apply_config ~cone ~lp ~jobs;
    let finish transport_name transport =
      let summary =
        run_corpus ~label ~corpus_path ~kind:header.Corpus.h_kind
          ~config_name:transport_name
          ~config_fields:(config_fields ~transport:transport_name ~jobs)
          ~transport insts
      in
      emit_record out append summary.r_json;
      Printf.eprintf
        "sweep run: %d instances in %.2fs (%.0f/s), %d mismatches, %d \
         certificate failures\n%!"
        summary.r_total summary.r_wall
        (if summary.r_wall > 0.0 then
           float_of_int summary.r_total /. summary.r_wall
         else 0.0)
        summary.r_mismatches summary.r_cert_failures;
      if summary.r_mismatches > 0 || summary.r_cert_failures > 0 then 1 else 0
    in
    match (socket, port) with
    | None, None ->
      let body () = finish "inproc" `Inproc in
      (match store with
      | None -> body ()
      | Some path -> Bagcqc_engine.Store.with_store path body)
    | Some _, Some _ ->
      prerr_endline "sweep run: --socket and --port are mutually exclusive";
      2
    | socket, port ->
      if store <> None then begin
        prerr_endline "sweep run: --store applies to in-process sweeps only";
        exit 2
      end;
      let addr =
        match (socket, port) with
        | Some path, None -> Bagcqc_serve.Protocol.Unix_path path
        | None, Some p -> Bagcqc_serve.Protocol.Tcp (host, p)
        | _ -> assert false
      in
      (match Bagcqc_serve.Client.connect addr with
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "sweep run: cannot connect to %s: %s\n%!"
          (Format.asprintf "%a" Bagcqc_serve.Protocol.pp_addr addr)
          (Unix.error_message e);
        1
      | client ->
        Fun.protect
          ~finally:(fun () -> Bagcqc_serve.Client.close client)
          (fun () -> finish "serve" (`Serve (client, window))))
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domain-pool size for the in-process sweep.")
  and cone_arg =
    Arg.(value & opt string "lazy" & info [ "cone-engine" ] ~docv:"ENGINE"
           ~doc:"Cone engine: $(b,lazy) or $(b,full).")
  and lp_arg =
    Arg.(value & opt string "float_first" & info [ "lp-engine" ] ~docv:"ENGINE"
           ~doc:"LP engine: $(b,float_first) or $(b,exact).")
  and store_arg =
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"PATH"
           ~doc:"Attach the persistent solve store at PATH for the sweep.")
  and socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Drive a live daemon over this Unix socket instead of \
                 deciding in-process.")
  and port_arg =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N"
           ~doc:"Drive a live daemon over TCP on this port.")
  and host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST"
           ~doc:"TCP host for $(b,--port).")
  and window_arg =
    Arg.(value & opt int 64 & info [ "window" ] ~docv:"N"
           ~doc:"Pipelining window (max outstanding requests) in serve mode.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Sweep a corpus and report throughput/latency per stratum")
    Term.(const run $ corpus_arg $ jobs_arg $ cone_arg $ lp_arg $ label_arg
          $ out_arg $ append_arg $ limit_arg $ store_arg $ socket_arg
          $ port_arg $ host_arg $ window_arg)

(* ---------------- audit subcommand ---------------- *)

let matrix =
  [
    (Cones.Lazy, Bagcqc_lp.Simplex.Float_first, 1);
    (Cones.Lazy, Bagcqc_lp.Simplex.Float_first, 4);
    (Cones.Lazy, Bagcqc_lp.Simplex.Exact, 1);
    (Cones.Lazy, Bagcqc_lp.Simplex.Exact, 4);
    (Cones.Full, Bagcqc_lp.Simplex.Float_first, 1);
    (Cones.Full, Bagcqc_lp.Simplex.Float_first, 4);
    (Cones.Full, Bagcqc_lp.Simplex.Exact, 1);
    (Cones.Full, Bagcqc_lp.Simplex.Exact, 4);
  ]

let audit_cmd =
  let run corpus_path label out append limit =
    let header, insts = load_corpus corpus_path in
    let insts = take limit insts in
    let failures = ref 0 in
    List.iter
      (fun (cone, lp, jobs) ->
        apply_config ~cone ~lp ~jobs;
        let config_name =
          Printf.sprintf "cone=%s lp=%s jobs=%d" (cone_name ()) (lp_name ())
            jobs
        in
        let summary =
          run_corpus ~label ~corpus_path ~kind:header.Corpus.h_kind
            ~config_name
            ~config_fields:(config_fields ~transport:"inproc" ~jobs)
            ~transport:`Inproc insts
        in
        emit_record out true summary.r_json;
        failures := !failures + summary.r_mismatches + summary.r_cert_failures;
        Printf.eprintf "sweep audit [%s]: %d instances, %.2fs, %d mismatches, \
                        %d cert failures\n%!"
          config_name summary.r_total summary.r_wall summary.r_mismatches
          summary.r_cert_failures)
      matrix;
    ignore append;
    if !failures > 0 then begin
      Printf.eprintf
        "sweep audit: %d FAILURES across the engine matrix — each reproducer \
         line above replays with `sweep run` on a one-line corpus\n%!"
        !failures;
      1
    end
    else begin
      Printf.eprintf
        "sweep audit: engine matrix clean (%d configurations, 0 mismatches, \
         0 certificate failures)\n%!"
        (List.length matrix);
      0
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Differential sweep under the full engine matrix; fail on any \
             disagreement")
    Term.(const run $ corpus_arg $ label_arg $ out_arg $ append_arg
          $ limit_arg)

(* ---------------- entry point ---------------- *)

let () =
  (* every verdict in audit mode must be engine-honest: comparing against
     the corpus label subsumes pairwise cross-config comparison, since
     equality to a common label is transitive *)
  let doc = "stratified corpus sweeps: generation, throughput, audit" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "sweep" ~doc) [ gen_cmd; run_cmd; audit_cmd ]))
